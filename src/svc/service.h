/**
 * @file
 * Closed-loop traffic-service endpoint (finite-MSHR request/reply
 * state machine) and per-class accounting.
 *
 * One ServiceEndpoint lives inside each NIC when cfg.svc.enabled. It
 * turns the open-loop traffic draw into a *request* stream gated by a
 * finite MSHR window, and turns request deliveries at the destination
 * into deterministically scheduled *replies*:
 *
 *   requester                         server
 *   ---------                         ------
 *   traffic draw + free MSHR
 *     -> inject request  ──────────▶  request tail delivered
 *                                       schedule reply at
 *                                       now + serviceLatency
 *   reply tail delivered ◀──────────  inject reply (same packetId)
 *     free MSHR, record RTT
 *
 * Everything is driven from the NIC's two phase entry points (inject
 * and recv), both shard-local, so the sharded engine's bit-identity
 * contract extends to service mode without any new synchronisation.
 * Replies reuse the request's packetId: the request is fully retired
 * before the reply is created, so IDs never coexist, and the reuse is
 * what makes the MSHR lookup and the RTT measurement O(1).
 */
#ifndef ROCOSIM_SVC_SERVICE_H_
#define ROCOSIM_SVC_SERVICE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/annotations.h"
#include "common/config.h"
#include "common/flit.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/hdr_histogram.h"

namespace noc {
namespace svc {

/**
 * Per-message-class latency/SLO accumulators, kept per NIC and merged
 * across nodes (in node order, so the merge is deterministic) into the
 * SimResult's per-class block.
 */
struct ClassStats {
    std::uint64_t injectedPackets = 0;  ///< packets entering the source queue
    std::uint64_t deliveredPackets = 0; ///< packets fully ejected here

    /** One-way network latency of measured packets of this class. */
    RunningStat latency;
    obs::HdrHistogram latencyHist;

    /**
     * Request round-trip time (inject request -> reply tail delivered),
     * recorded at the requester on the *request* classes only.
     */
    RunningStat rtt;
    obs::HdrHistogram rttHist;

    /** Measured RTTs that exceeded the tier's SLO threshold. */
    std::uint64_t sloViolations = 0;

    /** Folds @p other in; histogram geometries always match. */
    void merge(const ClassStats &other);
};

/**
 * Finite-MSHR endpoint state machine.
 *
 * MSHRs are reclaimed in injection order from the front of a deque:
 * completion marks an entry done in place, and a timeout (needed under
 * faults, where a source-dropped request never produces a reply) only
 * ever fires at the front, because injection cycles are monotone. Both
 * paths are functions of simulation state alone — no wall clock, no
 * iteration over unordered containers — so the endpoint is
 * bit-deterministic across engine shapes.
 */
class ServiceEndpoint
{
  public:
    /** A reply obligation waiting out its service latency. */
    struct PendingReply {
        Cycle fire = 0;             ///< injection becomes due this cycle
        NodeId requester = kInvalidNode;
        std::uint64_t packetId = 0; ///< the request's id, reused
        MsgClass cls = 0;           ///< reply class (request tier kept)
        bool measured = false;      ///< inherited from the request
    };

    /** RTT/ownership info returned when a reply lands. */
    struct Completion {
        bool known = false;   ///< false: MSHR already timed out
        Cycle injectCycle = 0;
        int tier = 0;
    };

    explicit ServiceEndpoint(const ServiceConfig &svc);

    /**
     * Reclaims front MSHRs that are done or have exceeded mshrTimeout.
     * Called once per cycle at the top of NIC generation so expiry
     * depends only on the cycle number, never on traffic draws.
     */
    NOC_PHASE_FN(inject) void reclaim(Cycle now);

    /** True while a free MSHR remains for a new request. */
    NOC_PHASE_FN(inject) bool canInject() const
    {
        return outstanding_ < maxOutstanding_;
    }

    /** Records a freshly injected request in the MSHR table. */
    NOC_PHASE_FN(inject)
    void onRequestInjected(std::uint64_t packetId, Cycle now, int tier);

    /** Counts a traffic draw discarded because the window was full. */
    NOC_PHASE_FN(inject) void noteThrottled() { ++throttled_; }

    /**
     * Server side: a request tail arrived here; schedule its reply.
     * Fire cycles are monotone (now is), so the pending deque stays
     * sorted by construction.
     */
    NOC_PHASE_FN(recv)
    void onRequestDelivered(const Flit &tail, Cycle now);

    /** The front reply obligation if it is due at @p now, else null. */
    NOC_PHASE_FN(inject) const PendingReply *dueReply(Cycle now) const
    {
        if (pending_.empty() || pending_.front().fire > now)
            return nullptr;
        return &pending_.front();
    }

    /** Consumes the front reply obligation (it was just injected). */
    NOC_PHASE_FN(inject) void popReply() { pending_.pop_front(); }

    /**
     * Requester side: a reply tail arrived; frees the MSHR and hands
     * back the data the RTT/SLO accounting needs. A reply whose MSHR
     * already timed out is tolerated (counted, not fatal).
     */
    NOC_PHASE_FN(recv) Completion onReplyDelivered(std::uint64_t packetId);

    int outstanding() const { return outstanding_; }
    std::size_t pendingReplies() const { return pending_.size(); }
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t lateReplies() const { return lateReplies_; }
    std::uint64_t throttled() const { return throttled_; }

  private:
    struct Mshr {
        std::uint64_t packetId = 0;
        Cycle injectCycle = 0;
        std::uint8_t tier = 0;
        bool done = false;
    };

    int maxOutstanding_;
    Cycle timeout_;
    Cycle serviceLatency_;

    /**
     * MSHR table in injection order plus an id index. Entries keep
     * their deque slot until they reach the front (done entries are
     * popped lazily), so iterator/index stability is never relied on
     * beyond front/back.
     */
    NOC_OWNED_STATE(inject, recv) std::deque<Mshr> mshrs_;
    NOC_OWNED_STATE(inject, recv)
    std::unordered_map<std::uint64_t, std::uint64_t> bySeq_;
    NOC_OWNED_STATE(inject) std::uint64_t frontSeq_ = 0;
    NOC_OWNED_STATE(inject, recv) int outstanding_ = 0;

    NOC_OWNED_STATE(inject, recv) std::deque<PendingReply> pending_;

    NOC_OWNED_STATE(inject) std::uint64_t timeouts_ = 0;
    NOC_OWNED_STATE(recv) std::uint64_t lateReplies_ = 0;
    NOC_OWNED_STATE(inject) std::uint64_t throttled_ = 0;
};

} // namespace svc
} // namespace noc

#endif // ROCOSIM_SVC_SERVICE_H_
