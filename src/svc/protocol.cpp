#include "svc/protocol.h"

namespace noc {
namespace svc {

const char *
toString(AvoidanceScheme s)
{
    switch (s) {
      case AvoidanceScheme::SharedPool: return "shared-pool";
      case AvoidanceScheme::ClassPartition: return "class-partition";
      case AvoidanceScheme::EndpointReserve: return "endpoint-reserve";
    }
    return "?";
}

bool
classPartitionActive(const SimConfig &cfg)
{
    return cfg.svc.enabled && cfg.svc.classVcPartition &&
           cfg.routing == RoutingKind::XYYX &&
           cfg.arch == RouterArch::Generic && cfg.vcsPerPort >= 2;
}

AvoidanceScheme
resolveScheme(const SimConfig &cfg)
{
    if (classPartitionActive(cfg))
        return AvoidanceScheme::ClassPartition;
    if (cfg.svc.endpointReserve)
        return AvoidanceScheme::EndpointReserve;
    return AvoidanceScheme::SharedPool;
}

} // namespace svc
} // namespace noc
