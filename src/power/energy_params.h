/**
 * @file
 * Per-component energy constants for each router architecture.
 *
 * The paper synthesised the three routers in TSMC 90 nm (1 V, 500 MHz,
 * 50% switching activity) with Synopsys Design Compiler and
 * back-annotated the resulting per-component power into the simulator.
 * We cannot rerun proprietary synthesis, so these constants are derived
 * from published 90 nm NoC router energy models (Orion-class): buffer
 * energy per flit scales with flit width, crossbar energy with the
 * square of the port count (wire capacitance of the grid), and arbiter
 * energy with the number of requesters.  What matters for the paper's
 * claims is the *relative* structure — 2x(2x2) crossbars vs a
 * decomposed 4x4 vs a full 5x5, and 2v:1 vs 5v:1 arbiters — which these
 * formulas preserve.  See DESIGN.md, substitution table.
 */
#ifndef ROCOSIM_POWER_ENERGY_PARAMS_H_
#define ROCOSIM_POWER_ENERGY_PARAMS_H_

#include "common/config.h"
#include "common/types.h"

namespace noc {

/** Energy per event, in picojoules. */
struct EnergyParams {
    double bufferWritePj = 0;  ///< one flit written to a VC buffer
    double bufferReadPj = 0;   ///< one flit read from a VC buffer
    double crossbarPj = 0;     ///< one flit through this arch's crossbar
    double linkPj = 0;         ///< one flit over an inter-router link
    double rcPj = 0;           ///< one routing computation (per head flit)
    double vaLocalPj = 0;      ///< one stage-1 VA arbitration
    double vaGlobalPj = 0;     ///< one stage-2 VA arbitration
    double saLocalPj = 0;      ///< one stage-1 SA arbitration
    double saGlobalPj = 0;     ///< one stage-2 SA arbitration
    double ejectPj = 0;        ///< one early ejection (demux tap)
    double leakagePjPerCycle = 0; ///< per router, per cycle

    /**
     * Constants for @p arch at the configuration's flit width.
     * The defaults reproduce the Figure 13 ordering:
     * RoCo < Path-Sensitive < Generic, with roughly 20% / 6% gaps.
     */
    static EnergyParams forArch(RouterArch arch, const SimConfig &cfg);
};

} // namespace noc

#endif // ROCOSIM_POWER_ENERGY_PARAMS_H_
