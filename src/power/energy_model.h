/**
 * @file
 * Activity-based energy accounting.
 *
 * Routers increment ActivityCounters as their components fire; the
 * EnergyModel multiplies the counters by the per-event constants and
 * adds leakage integrated over simulated time — exactly the paper's
 * methodology of back-annotating synthesis power into the simulator.
 */
#ifndef ROCOSIM_POWER_ENERGY_MODEL_H_
#define ROCOSIM_POWER_ENERGY_MODEL_H_

#include <cstdint>

#include "power/energy_params.h"

namespace noc {

/** Raw event counts for one router (or summed over the network). */
struct ActivityCounters {
    std::uint64_t bufferWrites = 0;
    std::uint64_t bufferReads = 0;
    std::uint64_t crossbarTraversals = 0;
    std::uint64_t linkTraversals = 0;
    std::uint64_t rcComputations = 0;
    std::uint64_t vaLocalArbs = 0;
    std::uint64_t vaGlobalArbs = 0;
    std::uint64_t saLocalArbs = 0;
    std::uint64_t saGlobalArbs = 0;
    /** SA grants decided by the mirror allocator's 2:1 tie arbiter. */
    std::uint64_t saMirrorTies = 0;
    std::uint64_t earlyEjections = 0;

    ActivityCounters &operator+=(const ActivityCounters &o);
    void reset() { *this = ActivityCounters(); }
};

/** Energy totals broken into the components the paper reports. */
struct EnergyBreakdown {
    double bufferPj = 0;
    double crossbarPj = 0;
    double arbiterPj = 0; ///< VA + SA
    double routingPj = 0;
    double linkPj = 0;
    double leakagePj = 0;

    double dynamicPj() const;
    double totalPj() const { return dynamicPj() + leakagePj; }
};

/** Stateless calculator from (counters, params, time, router count). */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params) : params_(params) {}

    /**
     * Energy for @p activity accumulated over @p cycles of simulated
     * time across @p numRouters routers (leakage term).
     */
    EnergyBreakdown compute(const ActivityCounters &activity, Cycle cycles,
                            int numRouters) const;

    /** Total energy / packets, in nanojoules (Figure 13's unit). */
    static double perPacketNj(const EnergyBreakdown &e,
                              std::uint64_t packets);

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace noc

#endif // ROCOSIM_POWER_ENERGY_MODEL_H_
