#include "power/thermal.h"

#include <algorithm>

#include "common/log.h"
#include "sim/network.h"

namespace noc {

ThermalModel::ThermalModel(int numNodes, const ThermalParams &params)
    : params_(params),
      temps_(static_cast<size_t>(numNodes), params.ambientC)
{
    NOC_ASSERT(numNodes > 0, "thermal model needs at least one tile");
    NOC_ASSERT(params.rThetaKPerW > 0 && params.cThetaJPerK > 0,
               "thermal constants must be positive");
}

void
ThermalModel::step(const std::vector<double> &powerWatts, double seconds)
{
    NOC_ASSERT(powerWatts.size() == temps_.size(),
               "power vector size mismatch");
    NOC_ASSERT(seconds >= 0, "time must advance forward");
    // Sub-step so the explicit Euler integration stays stable even for
    // windows longer than the RC time constant.
    const double tau = params_.rThetaKPerW * params_.cThetaJPerK;
    int substeps = std::max(1, static_cast<int>(seconds / (tau / 50)));
    double dt = seconds / substeps;
    for (int k = 0; k < substeps; ++k) {
        for (size_t i = 0; i < temps_.size(); ++i) {
            double leak =
                (temps_[i] - params_.ambientC) / params_.rThetaKPerW;
            temps_[i] +=
                dt / params_.cThetaJPerK * (powerWatts[i] - leak);
        }
    }
}

double
ThermalModel::temperature(NodeId n) const
{
    NOC_ASSERT(n < temps_.size(), "tile out of range");
    return temps_[n];
}

double
ThermalModel::steadyState(double watts) const
{
    return params_.ambientC + params_.rThetaKPerW * watts;
}

NodeId
ThermalModel::hottestNode() const
{
    return static_cast<NodeId>(
        std::max_element(temps_.begin(), temps_.end()) - temps_.begin());
}

double
ThermalModel::maxTemperature() const
{
    return *std::max_element(temps_.begin(), temps_.end());
}

double
ThermalModel::meanTemperature() const
{
    double sum = 0;
    for (double t : temps_)
        sum += t;
    return sum / static_cast<double>(temps_.size());
}

ThermalTracker::ThermalTracker(const Network &net,
                               const ThermalParams &params)
    : net_(net),
      energy_(EnergyParams::forArch(net.config().arch, net.config())),
      model_(net.numNodes(), params),
      last_(static_cast<size_t>(net.numNodes()))
{
}

void
ThermalTracker::sample(Cycle windowCycles)
{
    NOC_ASSERT(windowCycles > 0, "empty thermal window");
    double seconds =
        static_cast<double>(windowCycles) / model_.params().clockHz;
    std::vector<double> power(last_.size(), 0.0);
    for (size_t i = 0; i < last_.size(); ++i) {
        ActivityCounters now =
            net_.router(static_cast<NodeId>(i)).activity();
        // Per-router delta over the window.
        ActivityCounters delta = now;
        delta.bufferWrites -= last_[i].bufferWrites;
        delta.bufferReads -= last_[i].bufferReads;
        delta.crossbarTraversals -= last_[i].crossbarTraversals;
        delta.linkTraversals -= last_[i].linkTraversals;
        delta.rcComputations -= last_[i].rcComputations;
        delta.vaLocalArbs -= last_[i].vaLocalArbs;
        delta.vaGlobalArbs -= last_[i].vaGlobalArbs;
        delta.saLocalArbs -= last_[i].saLocalArbs;
        delta.saGlobalArbs -= last_[i].saGlobalArbs;
        delta.earlyEjections -= last_[i].earlyEjections;
        last_[i] = now;

        EnergyBreakdown e = energy_.compute(delta, windowCycles, 1);
        power[i] = e.totalPj() * 1e-12 / seconds;
    }
    model_.step(power, seconds);
}

} // namespace noc
