/**
 * @file
 * Lumped-RC thermal model per router tile.
 *
 * The paper's stated future work: "we plan to investigate the
 * temperature effects when using the proposed router with XY-YX and
 * adaptive routing." This module provides the standard first-order
 * HotSpot-style abstraction: each router tile is a thermal capacitance
 * behind a thermal resistance to ambient, driven by the power the
 * energy model attributes to it over a sampling window:
 *
 *   T' = T + dt/C * (P - (T - Tamb)/R)
 *
 * The steady state under constant power is Tamb + R*P; transients decay
 * with time constant R*C. ThermalTracker samples a live Network
 * periodically and maintains the per-tile temperature map, which the
 * thermal bench uses to compare hotspot profiles across architectures.
 */
#ifndef ROCOSIM_POWER_THERMAL_H_
#define ROCOSIM_POWER_THERMAL_H_

#include <vector>

#include "common/types.h"
#include "power/energy_model.h"

namespace noc {

class Network;

/** Physical constants of one router tile's thermal path. */
struct ThermalParams {
    double rThetaKPerW = 40.0;  ///< junction-to-ambient resistance
    double cThetaJPerK = 0.004; ///< tile thermal capacitance
    double ambientC = 45.0;     ///< ambient / package temperature
    double clockHz = 500e6;     ///< converts cycles to seconds
};

/** First-order RC network, one node per router. */
class ThermalModel
{
  public:
    ThermalModel(int numNodes, const ThermalParams &params = {});

    /**
     * Advances every tile by @p seconds under per-tile power
     * @p powerWatts (size must equal numNodes()).
     */
    void step(const std::vector<double> &powerWatts, double seconds);

    double temperature(NodeId n) const;
    /** Steady-state temperature for @p watts of tile power. */
    double steadyState(double watts) const;

    NodeId hottestNode() const;
    double maxTemperature() const;
    double meanTemperature() const;

    int numNodes() const { return static_cast<int>(temps_.size()); }
    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
    std::vector<double> temps_;
};

/**
 * Samples a Network's per-router activity every window and feeds the
 * dissipated power into a ThermalModel.
 */
class ThermalTracker
{
  public:
    ThermalTracker(const Network &net, const ThermalParams &params = {});

    /**
     * Accounts the activity accumulated since the last sample as power
     * over @p windowCycles and advances the RC model.
     */
    void sample(Cycle windowCycles);

    const ThermalModel &model() const { return model_; }

  private:
    const Network &net_;
    EnergyModel energy_;
    ThermalModel model_;
    std::vector<ActivityCounters> last_;
};

} // namespace noc

#endif // ROCOSIM_POWER_THERMAL_H_
