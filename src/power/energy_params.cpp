#include "power/energy_params.h"

namespace noc {

namespace {

// Baseline 90 nm constants for a 128-bit datapath, picojoules.
// Sources: Orion-style analytical models at 90 nm scaled to 128-bit
// flits; absolute values are calibrated so the generic router lands in
// the sub-1 nJ/packet regime of Figure 13 at 30% injection.
constexpr double kBufWritePerBit = 0.075; // SRAM/FF write, per bit
constexpr double kBufReadPerBit = 0.055;  // read, per bit
constexpr double kLinkPerBit = 0.125;     // 1 mm link at 90 nm, per bit

// Crossbar: matrix-crossbar wire grid, energy ~ perBit * ports.
constexpr double kXbarPerBitPerPort = 0.018;

// Control logic, per arbitration, per requester.
constexpr double kArbPerReq = 0.06;
constexpr double kRcEnergy = 0.9; // one route computation

} // namespace

EnergyParams
EnergyParams::forArch(RouterArch arch, const SimConfig &cfg)
{
    EnergyParams p;
    const double bits = static_cast<double>(cfg.flitBits);
    const int v = cfg.vcsPerPort;

    p.bufferWritePj = kBufWritePerBit * bits;
    p.bufferReadPj = kBufReadPerBit * bits;
    p.linkPj = kLinkPerBit * bits;
    p.rcPj = kRcEnergy;
    p.ejectPj = 0.15 * p.bufferReadPj; // demux tap, no SA/ST

    switch (arch) {
      case RouterArch::Generic:
        // Full 5x5 matrix crossbar.
        p.crossbarPj = kXbarPerBitPerPort * bits * kNumPorts;
        // VA: stage-1 v:1 per input VC, stage-2 5v:1 per output VC.
        p.vaLocalPj = kArbPerReq * v;
        p.vaGlobalPj = kArbPerReq * kNumPorts * v;
        // SA: stage-1 v:1 per port, stage-2 5:1 per output port.
        p.saLocalPj = kArbPerReq * v;
        p.saGlobalPj = kArbPerReq * kNumPorts;
        p.leakagePjPerCycle = 2.3;
        break;
      case RouterArch::PathSensitive:
        // Decomposed 4x4: half the cross-points of a full 4x4, but
        // the wire grid still spans most of the four-port area
        // (0.8 effective port factor).
        p.crossbarPj = kXbarPerBitPerPort * bits * kNumCardinal * 0.8;
        // VA over path sets: stage-2 arbitrates 2 sets x v VCs.
        p.vaLocalPj = kArbPerReq * v;
        p.vaGlobalPj = kArbPerReq * 2 * v;
        // SA: stage-1 v:1 per path set, stage-2 2:1 per output.
        p.saLocalPj = kArbPerReq * v;
        p.saGlobalPj = kArbPerReq * 2;
        p.leakagePjPerCycle = 2.05;
        break;
      case RouterArch::Roco:
        // Two independent 2x2 crossbars; a flit crosses exactly one.
        p.crossbarPj = kXbarPerBitPerPort * bits * 2;
        // VA: fewer and smaller arbiters (Figure 2): 2v:1 stage 2.
        p.vaLocalPj = kArbPerReq * v;
        p.vaGlobalPj = kArbPerReq * 2 * v;
        // Mirror allocator: two v:1 local arbiters per port, a single
        // 2:1 global arbiter per module (Figure 4).
        p.saLocalPj = kArbPerReq * v;
        p.saGlobalPj = kArbPerReq * 2;
        p.leakagePjPerCycle = 1.95;
        break;
    }
    return p;
}

} // namespace noc
