#include "power/energy_model.h"

namespace noc {

ActivityCounters &
ActivityCounters::operator+=(const ActivityCounters &o)
{
    bufferWrites += o.bufferWrites;
    bufferReads += o.bufferReads;
    crossbarTraversals += o.crossbarTraversals;
    linkTraversals += o.linkTraversals;
    rcComputations += o.rcComputations;
    vaLocalArbs += o.vaLocalArbs;
    vaGlobalArbs += o.vaGlobalArbs;
    saLocalArbs += o.saLocalArbs;
    saGlobalArbs += o.saGlobalArbs;
    saMirrorTies += o.saMirrorTies;
    earlyEjections += o.earlyEjections;
    return *this;
}

double
EnergyBreakdown::dynamicPj() const
{
    return bufferPj + crossbarPj + arbiterPj + routingPj + linkPj;
}

EnergyBreakdown
EnergyModel::compute(const ActivityCounters &a, Cycle cycles,
                     int numRouters) const
{
    const EnergyParams &p = params_;
    EnergyBreakdown e;
    e.bufferPj = static_cast<double>(a.bufferWrites) * p.bufferWritePj +
                 static_cast<double>(a.bufferReads) * p.bufferReadPj +
                 static_cast<double>(a.earlyEjections) * p.ejectPj;
    e.crossbarPj = static_cast<double>(a.crossbarTraversals) * p.crossbarPj;
    e.arbiterPj = static_cast<double>(a.vaLocalArbs) * p.vaLocalPj +
                  static_cast<double>(a.vaGlobalArbs) * p.vaGlobalPj +
                  static_cast<double>(a.saLocalArbs) * p.saLocalPj +
                  static_cast<double>(a.saGlobalArbs) * p.saGlobalPj;
    e.routingPj = static_cast<double>(a.rcComputations) * p.rcPj;
    e.linkPj = static_cast<double>(a.linkTraversals) * p.linkPj;
    e.leakagePj = static_cast<double>(cycles) * numRouters *
                  p.leakagePjPerCycle;
    return e;
}

double
EnergyModel::perPacketNj(const EnergyBreakdown &e, std::uint64_t packets)
{
    if (packets == 0)
        return 0.0;
    return e.totalPj() / static_cast<double>(packets) / 1000.0;
}

} // namespace noc
