#include "fault/fault_injector.h"

#include <algorithm>

#include "common/log.h"

namespace noc {

std::vector<FaultSpec>
placeRandomFaults(const MeshTopology &topo, FaultClass cls, int count,
                  int vcsPerSet, std::uint64_t seed)
{
    NOC_ASSERT(count >= 0 && count <= topo.numNodes(),
               "more faults than nodes");
    Rng rng(seed, 0xFA017ull);
    std::vector<FaultComponent> pool = componentsInClass(cls);

    // Distinct nodes via partial Fisher-Yates over the node ids.
    std::vector<NodeId> nodes(static_cast<size_t>(topo.numNodes()));
    for (size_t i = 0; i < nodes.size(); ++i)
        nodes[i] = static_cast<NodeId>(i);
    for (int i = 0; i < count; ++i) {
        size_t j = i + rng.nextRange(nodes.size() - i);
        std::swap(nodes[i], nodes[j]);
    }

    std::vector<FaultSpec> out;
    out.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        FaultSpec f;
        f.node = nodes[i];
        f.component = pool[rng.nextRange(pool.size())];
        f.module = rng.nextBool(0.5) ? Module::Row : Module::Column;
        f.portIndex = static_cast<int>(rng.nextRange(2));
        f.vcIndex = static_cast<int>(rng.nextRange(vcsPerSet));
        out.push_back(f);
    }
    return out;
}

} // namespace noc
