/**
 * @file
 * Permanent-fault taxonomy and per-node fault state (paper Section 4).
 *
 * Components are classified along the paper's Table 3 axes:
 * per-flit vs per-packet operation, critical vs non-critical pathway,
 * and message-centric vs router-centric.  Figure 11 injects faults from
 * the router-centric / critical-pathway group; Figure 12 from the
 * message-centric / non-critical group.
 *
 * Reaction table (who loses what):
 *  - Generic & Path-Sensitive: ANY hard fault takes the whole node
 *    off-line (the paper's stated behaviour for unified designs).
 *  - RoCo "Hardware Recycling":
 *      RC fault        -> router stays up; downstream neighbours do
 *                         double routing (+1 cycle for heads from it)
 *      Buffer fault    -> affected VC retired, traffic rides the
 *                         remaining VCs of the path set (virtual
 *                         queuing averts isolation)
 *      SA fault        -> module keeps running, SA offloads onto idle
 *                         VA arbiters (degraded grant bandwidth)
 *      VA fault        -> that module is blocked, other module serves
 *      Crossbar fault  -> that module is blocked
 *      MUX/DEMUX fault -> that module is blocked
 */
#ifndef ROCOSIM_FAULT_FAULT_H_
#define ROCOSIM_FAULT_FAULT_H_

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace noc {

/** The six fundamental router components of Section 4.1. */
enum class FaultComponent : std::uint8_t {
    RoutingUnit = 0, ///< RC logic
    VcBuffer = 1,    ///< one VC's storage (bypass path available)
    VaArbiter = 2,   ///< virtual channel allocator
    SaArbiter = 3,   ///< switch allocator
    Crossbar = 4,    ///< switch fabric
    MuxDemux = 5,    ///< input decoders / output muxes
};

/** Human-readable component name. */
const char *toString(FaultComponent c);

/** Table 3 classification of a component. */
struct FaultClassification {
    bool perFlit;       ///< operates on every flit (vs header only)
    bool critical;      ///< on the datapath critical pathway
    bool routerCentric; ///< needs cross-message state (vs message-centric)
};

/** Classification per the paper's Table 3 (buffers have bypass paths). */
FaultClassification classify(FaultComponent c);

/** The two fault populations of Figures 11 and 12. */
enum class FaultClass : std::uint8_t {
    RouterCentricCritical = 0,    ///< Fig 11: VA, SA, crossbar, mux/demux
    MessageCentricNonCritical = 1, ///< Fig 12: RC, buffers
};

/** Components belonging to @p cls. */
std::vector<FaultComponent> componentsInClass(FaultClass cls);

/** One injected permanent fault. */
struct FaultSpec {
    NodeId node = kInvalidNode;
    FaultComponent component = FaultComponent::Crossbar;
    /** Module containing the component (module-scoped components). */
    Module module = Module::Row;
    /** Input port / path set index for buffer and mux/demux faults. */
    int portIndex = 0;
    /** VC index within the port/path set, for buffer faults. */
    int vcIndex = 0;
};

/** A retired VC (buffer fault) location. */
struct DeadVc {
    Module module = Module::Row;
    int portIndex = 0;
    int vcIndex = 0;
};

/**
 * Effective health of one node after applying its faults, as seen by the
 * node itself and (via the paper's handshaking signals) its neighbours.
 */
struct NodeFaultState {
    bool nodeDead = false;            ///< generic/PS: fully off-line
    bool moduleDead[2] = {false, false};  ///< RoCo, indexed by Module
    bool rcFaulty = false;            ///< RoCo: double routing downstream
    bool saDegraded[2] = {false, false};  ///< RoCo: SA borrowing VA
    std::vector<DeadVc> deadVcs;      ///< RoCo: retired buffers

    bool anyModuleDead() const { return moduleDead[0] || moduleDead[1]; }
    bool isModuleDead(Module m) const
    {
        return nodeDead || moduleDead[static_cast<int>(m)];
    }
    bool isVcDead(Module m, int port, int vc) const;
};

/**
 * Network-wide fault table: applies FaultSpecs according to the
 * architecture's reaction rules and answers neighbour health queries.
 */
class FaultMap
{
  public:
    FaultMap(int numNodes, RouterArch arch);

    /** Applies one permanent fault (static injection at t=0). */
    void apply(const FaultSpec &fault);

    const NodeFaultState &
    state(NodeId n) const
    {
        NOC_ASSERT(n < states_.size(), "node id out of range");
        return states_[n];
    }
    RouterArch arch() const { return arch_; }

    /**
     * True when a flit whose output at node @p n is @p outDir would be
     * stranded there: the node is dead, or (RoCo) the module owning
     * @p outDir is dead. @p outDir == Local means ejection, which RoCo
     * performs before either module.
     */
    bool blocksOutput(NodeId n, Direction outDir) const;

  private:
    RouterArch arch_;
    std::vector<NodeFaultState> states_;
};

} // namespace noc

#endif // ROCOSIM_FAULT_FAULT_H_
