#include "fault/fault.h"

#include "common/log.h"

namespace noc {

const char *
toString(FaultComponent c)
{
    switch (c) {
      case FaultComponent::RoutingUnit: return "RC";
      case FaultComponent::VcBuffer: return "VC-buffer";
      case FaultComponent::VaArbiter: return "VA";
      case FaultComponent::SaArbiter: return "SA";
      case FaultComponent::Crossbar: return "crossbar";
      case FaultComponent::MuxDemux: return "mux/demux";
    }
    return "?";
}

FaultClassification
classify(FaultComponent c)
{
    // Table 3 of the paper; buffers assumed to have bypass paths.
    switch (c) {
      case FaultComponent::RoutingUnit:
        return {false, false, false}; // per-packet, non-critical, message
      case FaultComponent::VcBuffer:
        return {true, false, false};  // per-flit, non-critical (bypass)
      case FaultComponent::VaArbiter:
        return {false, false, true};  // per-packet, non-critical, router
      case FaultComponent::SaArbiter:
        return {true, false, true};   // per-flit, non-critical, router
      case FaultComponent::Crossbar:
        return {true, true, true};    // per-flit, critical, router
      case FaultComponent::MuxDemux:
        return {true, true, false};   // per-flit, critical, message
    }
    NOC_ASSERT(false, "unknown component");
    return {};
}

std::vector<FaultComponent>
componentsInClass(FaultClass cls)
{
    if (cls == FaultClass::RouterCentricCritical) {
        // Union of router-centric and critical-pathway components
        // (Figure 11's caption).
        return {FaultComponent::VaArbiter, FaultComponent::SaArbiter,
                FaultComponent::Crossbar, FaultComponent::MuxDemux};
    }
    return {FaultComponent::RoutingUnit, FaultComponent::VcBuffer};
}

bool
NodeFaultState::isVcDead(Module m, int port, int vc) const
{
    for (const DeadVc &d : deadVcs) {
        if (d.module == m && d.portIndex == port && d.vcIndex == vc)
            return true;
    }
    return false;
}

FaultMap::FaultMap(int numNodes, RouterArch arch)
    : arch_(arch), states_(static_cast<size_t>(numNodes))
{
}

void
FaultMap::apply(const FaultSpec &f)
{
    NOC_ASSERT(f.node < states_.size(), "fault on nonexistent node");
    NodeFaultState &s = states_[f.node];

    if (arch_ != RouterArch::Roco) {
        // Unified designs: any hard failure takes the node off-line.
        s.nodeDead = true;
        return;
    }

    // RoCo hardware recycling (Section 4.1).
    int m = static_cast<int>(f.module);
    switch (f.component) {
      case FaultComponent::RoutingUnit:
        s.rcFaulty = true; // neighbours double-route; router stays up
        break;
      case FaultComponent::VcBuffer:
        s.deadVcs.push_back({f.module, f.portIndex, f.vcIndex});
        break;
      case FaultComponent::SaArbiter:
        s.saDegraded[m] = true; // offloaded onto idle VA arbiters
        break;
      case FaultComponent::VaArbiter:
      case FaultComponent::Crossbar:
      case FaultComponent::MuxDemux:
        s.moduleDead[m] = true; // isolate the module, keep the other
        break;
    }
}

bool
FaultMap::blocksOutput(NodeId n, Direction outDir) const
{
    const NodeFaultState &s = state(n);
    if (s.nodeDead)
        return true;
    if (outDir == Direction::Local || outDir == Direction::Invalid)
        return false; // early ejection happens before either module
    return s.moduleDead[static_cast<int>(moduleOf(outDir))];
}

} // namespace noc
