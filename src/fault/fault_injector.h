/**
 * @file
 * Random fault placement for the Figure 11/12 experiments.
 */
#ifndef ROCOSIM_FAULT_FAULT_INJECTOR_H_
#define ROCOSIM_FAULT_FAULT_INJECTOR_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault.h"
#include "topology/mesh.h"

namespace noc {

/**
 * Draws @p count faults of class @p cls at distinct random nodes.
 *
 * The component is drawn uniformly from the class; module, port and VC
 * locations are drawn uniformly over their ranges (@p vcsPerSet VCs per
 * path set / port). Deterministic in @p seed, and independent of the
 * router architecture so all three architectures face the *same* fault
 * pattern — the comparison the paper makes.
 */
std::vector<FaultSpec>
placeRandomFaults(const MeshTopology &topo, FaultClass cls, int count,
                  int vcsPerSet, std::uint64_t seed);

} // namespace noc

#endif // ROCOSIM_FAULT_FAULT_INJECTOR_H_
