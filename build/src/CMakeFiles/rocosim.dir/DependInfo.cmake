
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/rocosim.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/common/config.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/rocosim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/rocosim.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/CMakeFiles/rocosim.dir/common/types.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/common/types.cpp.o.d"
  "/root/repo/src/exp/json_out.cpp" "src/CMakeFiles/rocosim.dir/exp/json_out.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/exp/json_out.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/CMakeFiles/rocosim.dir/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/exp/sweep.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/CMakeFiles/rocosim.dir/fault/fault.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/fault/fault.cpp.o.d"
  "/root/repo/src/fault/fault_injector.cpp" "src/CMakeFiles/rocosim.dir/fault/fault_injector.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/fault/fault_injector.cpp.o.d"
  "/root/repo/src/metrics/arbiter_complexity.cpp" "src/CMakeFiles/rocosim.dir/metrics/arbiter_complexity.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/metrics/arbiter_complexity.cpp.o.d"
  "/root/repo/src/metrics/matching.cpp" "src/CMakeFiles/rocosim.dir/metrics/matching.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/metrics/matching.cpp.o.d"
  "/root/repo/src/metrics/pef.cpp" "src/CMakeFiles/rocosim.dir/metrics/pef.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/metrics/pef.cpp.o.d"
  "/root/repo/src/power/energy_model.cpp" "src/CMakeFiles/rocosim.dir/power/energy_model.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/power/energy_model.cpp.o.d"
  "/root/repo/src/power/energy_params.cpp" "src/CMakeFiles/rocosim.dir/power/energy_params.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/power/energy_params.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/CMakeFiles/rocosim.dir/power/thermal.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/power/thermal.cpp.o.d"
  "/root/repo/src/router/arbiter.cpp" "src/CMakeFiles/rocosim.dir/router/arbiter.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/router/arbiter.cpp.o.d"
  "/root/repo/src/router/generic/generic_router.cpp" "src/CMakeFiles/rocosim.dir/router/generic/generic_router.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/router/generic/generic_router.cpp.o.d"
  "/root/repo/src/router/pathsensitive/ps_router.cpp" "src/CMakeFiles/rocosim.dir/router/pathsensitive/ps_router.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/router/pathsensitive/ps_router.cpp.o.d"
  "/root/repo/src/router/roco/mirror_allocator.cpp" "src/CMakeFiles/rocosim.dir/router/roco/mirror_allocator.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/router/roco/mirror_allocator.cpp.o.d"
  "/root/repo/src/router/roco/roco_router.cpp" "src/CMakeFiles/rocosim.dir/router/roco/roco_router.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/router/roco/roco_router.cpp.o.d"
  "/root/repo/src/router/roco/vc_config.cpp" "src/CMakeFiles/rocosim.dir/router/roco/vc_config.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/router/roco/vc_config.cpp.o.d"
  "/root/repo/src/router/router.cpp" "src/CMakeFiles/rocosim.dir/router/router.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/router/router.cpp.o.d"
  "/root/repo/src/routing/adaptive.cpp" "src/CMakeFiles/rocosim.dir/routing/adaptive.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/routing/adaptive.cpp.o.d"
  "/root/repo/src/routing/quadrant.cpp" "src/CMakeFiles/rocosim.dir/routing/quadrant.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/routing/quadrant.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/CMakeFiles/rocosim.dir/routing/routing.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/routing/routing.cpp.o.d"
  "/root/repo/src/routing/xy.cpp" "src/CMakeFiles/rocosim.dir/routing/xy.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/routing/xy.cpp.o.d"
  "/root/repo/src/routing/xyyx.cpp" "src/CMakeFiles/rocosim.dir/routing/xyyx.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/routing/xyyx.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/rocosim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/nic.cpp" "src/CMakeFiles/rocosim.dir/sim/nic.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/sim/nic.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rocosim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/topology/channel.cpp" "src/CMakeFiles/rocosim.dir/topology/channel.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/topology/channel.cpp.o.d"
  "/root/repo/src/topology/mesh.cpp" "src/CMakeFiles/rocosim.dir/topology/mesh.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/topology/mesh.cpp.o.d"
  "/root/repo/src/traffic/injection.cpp" "src/CMakeFiles/rocosim.dir/traffic/injection.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/traffic/injection.cpp.o.d"
  "/root/repo/src/traffic/mpeg.cpp" "src/CMakeFiles/rocosim.dir/traffic/mpeg.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/traffic/mpeg.cpp.o.d"
  "/root/repo/src/traffic/patterns.cpp" "src/CMakeFiles/rocosim.dir/traffic/patterns.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/traffic/patterns.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/CMakeFiles/rocosim.dir/traffic/trace.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/traffic/trace.cpp.o.d"
  "/root/repo/src/traffic/traffic.cpp" "src/CMakeFiles/rocosim.dir/traffic/traffic.cpp.o" "gcc" "src/CMakeFiles/rocosim.dir/traffic/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
