file(REMOVE_RECURSE
  "librocosim.a"
)
