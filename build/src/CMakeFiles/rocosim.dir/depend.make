# Empty dependencies file for rocosim.
# This may be replaced when dependencies are built.
