# Empty dependencies file for traffic_playground.
# This may be replaced when dependencies are built.
