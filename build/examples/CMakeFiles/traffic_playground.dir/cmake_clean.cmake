file(REMOVE_RECURSE
  "CMakeFiles/traffic_playground.dir/traffic_playground.cpp.o"
  "CMakeFiles/traffic_playground.dir/traffic_playground.cpp.o.d"
  "traffic_playground"
  "traffic_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
