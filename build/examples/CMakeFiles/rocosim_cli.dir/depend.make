# Empty dependencies file for rocosim_cli.
# This may be replaced when dependencies are built.
