file(REMOVE_RECURSE
  "CMakeFiles/rocosim_cli.dir/rocosim_cli.cpp.o"
  "CMakeFiles/rocosim_cli.dir/rocosim_cli.cpp.o.d"
  "rocosim_cli"
  "rocosim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocosim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
