# Empty dependencies file for quadrant_test.
# This may be replaced when dependencies are built.
