file(REMOVE_RECURSE
  "CMakeFiles/quadrant_test.dir/quadrant_test.cpp.o"
  "CMakeFiles/quadrant_test.dir/quadrant_test.cpp.o.d"
  "quadrant_test"
  "quadrant_test.pdb"
  "quadrant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadrant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
