# Empty dependencies file for drop_semantics_test.
# This may be replaced when dependencies are built.
