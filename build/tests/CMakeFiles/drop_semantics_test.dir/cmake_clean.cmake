file(REMOVE_RECURSE
  "CMakeFiles/drop_semantics_test.dir/drop_semantics_test.cpp.o"
  "CMakeFiles/drop_semantics_test.dir/drop_semantics_test.cpp.o.d"
  "drop_semantics_test"
  "drop_semantics_test.pdb"
  "drop_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drop_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
