file(REMOVE_RECURSE
  "CMakeFiles/vc_buffer_test.dir/vc_buffer_test.cpp.o"
  "CMakeFiles/vc_buffer_test.dir/vc_buffer_test.cpp.o.d"
  "vc_buffer_test"
  "vc_buffer_test.pdb"
  "vc_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
