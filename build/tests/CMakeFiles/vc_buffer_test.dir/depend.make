# Empty dependencies file for vc_buffer_test.
# This may be replaced when dependencies are built.
