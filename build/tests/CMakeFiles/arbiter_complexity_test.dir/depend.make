# Empty dependencies file for arbiter_complexity_test.
# This may be replaced when dependencies are built.
