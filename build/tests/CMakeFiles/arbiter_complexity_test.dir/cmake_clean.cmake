file(REMOVE_RECURSE
  "CMakeFiles/arbiter_complexity_test.dir/arbiter_complexity_test.cpp.o"
  "CMakeFiles/arbiter_complexity_test.dir/arbiter_complexity_test.cpp.o.d"
  "arbiter_complexity_test"
  "arbiter_complexity_test.pdb"
  "arbiter_complexity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
