file(REMOVE_RECURSE
  "CMakeFiles/fault_integration_test.dir/fault_integration_test.cpp.o"
  "CMakeFiles/fault_integration_test.dir/fault_integration_test.cpp.o.d"
  "fault_integration_test"
  "fault_integration_test.pdb"
  "fault_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
