file(REMOVE_RECURSE
  "CMakeFiles/pef_test.dir/pef_test.cpp.o"
  "CMakeFiles/pef_test.dir/pef_test.cpp.o.d"
  "pef_test"
  "pef_test.pdb"
  "pef_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
