# Empty compiler generated dependencies file for pef_test.
# This may be replaced when dependencies are built.
