# Empty compiler generated dependencies file for vc_config_test.
# This may be replaced when dependencies are built.
