file(REMOVE_RECURSE
  "CMakeFiles/vc_config_test.dir/vc_config_test.cpp.o"
  "CMakeFiles/vc_config_test.dir/vc_config_test.cpp.o.d"
  "vc_config_test"
  "vc_config_test.pdb"
  "vc_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
