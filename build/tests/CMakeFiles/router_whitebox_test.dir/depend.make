# Empty dependencies file for router_whitebox_test.
# This may be replaced when dependencies are built.
