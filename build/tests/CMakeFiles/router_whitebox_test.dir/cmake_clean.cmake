file(REMOVE_RECURSE
  "CMakeFiles/router_whitebox_test.dir/router_whitebox_test.cpp.o"
  "CMakeFiles/router_whitebox_test.dir/router_whitebox_test.cpp.o.d"
  "router_whitebox_test"
  "router_whitebox_test.pdb"
  "router_whitebox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_whitebox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
