file(REMOVE_RECURSE
  "CMakeFiles/mirror_allocator_test.dir/mirror_allocator_test.cpp.o"
  "CMakeFiles/mirror_allocator_test.dir/mirror_allocator_test.cpp.o.d"
  "mirror_allocator_test"
  "mirror_allocator_test.pdb"
  "mirror_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirror_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
