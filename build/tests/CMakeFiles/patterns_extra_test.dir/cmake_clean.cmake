file(REMOVE_RECURSE
  "CMakeFiles/patterns_extra_test.dir/patterns_extra_test.cpp.o"
  "CMakeFiles/patterns_extra_test.dir/patterns_extra_test.cpp.o.d"
  "patterns_extra_test"
  "patterns_extra_test.pdb"
  "patterns_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
