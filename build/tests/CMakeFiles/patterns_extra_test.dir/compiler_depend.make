# Empty compiler generated dependencies file for patterns_extra_test.
# This may be replaced when dependencies are built.
