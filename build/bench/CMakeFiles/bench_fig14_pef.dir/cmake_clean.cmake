file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_pef.dir/bench_fig14_pef.cpp.o"
  "CMakeFiles/bench_fig14_pef.dir/bench_fig14_pef.cpp.o.d"
  "bench_fig14_pef"
  "bench_fig14_pef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_pef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
