file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_uniform.dir/bench_fig8_uniform.cpp.o"
  "CMakeFiles/bench_fig8_uniform.dir/bench_fig8_uniform.cpp.o.d"
  "bench_fig8_uniform"
  "bench_fig8_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
