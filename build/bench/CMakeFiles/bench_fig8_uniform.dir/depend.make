# Empty dependencies file for bench_fig8_uniform.
# This may be replaced when dependencies are built.
