# Empty compiler generated dependencies file for bench_fig11_critical_faults.
# This may be replaced when dependencies are built.
