# Empty compiler generated dependencies file for bench_fig9_selfsimilar.
# This may be replaced when dependencies are built.
