file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_selfsimilar.dir/bench_fig9_selfsimilar.cpp.o"
  "CMakeFiles/bench_fig9_selfsimilar.dir/bench_fig9_selfsimilar.cpp.o.d"
  "bench_fig9_selfsimilar"
  "bench_fig9_selfsimilar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_selfsimilar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
