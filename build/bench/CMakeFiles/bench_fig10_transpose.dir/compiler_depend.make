# Empty compiler generated dependencies file for bench_fig10_transpose.
# This may be replaced when dependencies are built.
