file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_transpose.dir/bench_fig10_transpose.cpp.o"
  "CMakeFiles/bench_fig10_transpose.dir/bench_fig10_transpose.cpp.o.d"
  "bench_fig10_transpose"
  "bench_fig10_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
