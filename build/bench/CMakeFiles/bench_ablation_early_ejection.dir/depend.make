# Empty dependencies file for bench_ablation_early_ejection.
# This may be replaced when dependencies are built.
