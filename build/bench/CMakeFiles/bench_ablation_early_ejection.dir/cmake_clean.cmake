file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_early_ejection.dir/bench_ablation_early_ejection.cpp.o"
  "CMakeFiles/bench_ablation_early_ejection.dir/bench_ablation_early_ejection.cpp.o.d"
  "bench_ablation_early_ejection"
  "bench_ablation_early_ejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_early_ejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
