file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_noncritical_faults.dir/bench_fig12_noncritical_faults.cpp.o"
  "CMakeFiles/bench_fig12_noncritical_faults.dir/bench_fig12_noncritical_faults.cpp.o.d"
  "bench_fig12_noncritical_faults"
  "bench_fig12_noncritical_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_noncritical_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
