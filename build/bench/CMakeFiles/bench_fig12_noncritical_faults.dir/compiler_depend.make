# Empty compiler generated dependencies file for bench_fig12_noncritical_faults.
# This may be replaced when dependencies are built.
