# Empty dependencies file for bench_fig2_va_complexity.
# This may be replaced when dependencies are built.
