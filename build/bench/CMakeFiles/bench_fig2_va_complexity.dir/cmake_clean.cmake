file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_va_complexity.dir/bench_fig2_va_complexity.cpp.o"
  "CMakeFiles/bench_fig2_va_complexity.dir/bench_fig2_va_complexity.cpp.o.d"
  "bench_fig2_va_complexity"
  "bench_fig2_va_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_va_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
