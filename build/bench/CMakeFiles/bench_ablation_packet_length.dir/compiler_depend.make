# Empty compiler generated dependencies file for bench_ablation_packet_length.
# This may be replaced when dependencies are built.
