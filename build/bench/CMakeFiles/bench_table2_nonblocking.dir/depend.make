# Empty dependencies file for bench_table2_nonblocking.
# This may be replaced when dependencies are built.
