file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_nonblocking.dir/bench_table2_nonblocking.cpp.o"
  "CMakeFiles/bench_table2_nonblocking.dir/bench_table2_nonblocking.cpp.o.d"
  "bench_table2_nonblocking"
  "bench_table2_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
