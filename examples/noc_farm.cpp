/**
 * @file
 * Multi-process sweep farm driver (src/farm).
 *
 *   noc_farm --dir <journal> [options]
 *     --dir <path>        journal directory (created on first run)
 *     --workers <n>       worker processes to fork (default 2)
 *     --resume            require an existing journal (same spec!)
 *     --ttl <sec>         lease-expiry steal backstop (default 60)
 *     --out <path>        final json path (default <dir>/BENCH_<name>.json)
 *     --provenance        emit per-point attempt/worker/wallMs blocks
 *                         (breaks the byte-identity contract on purpose;
 *                         NOC_FARM_PROVENANCE=1 does the same)
 *     --name <s>          sweep name (default "farm")
 *
 *   Sweep axes (comma lists) and base config:
 *     --archs generic,ps,roco      --routings xy,xyyx,adaptive
 *     --traffics uniform,...       --rates 0.1,0.2,...
 *     --mesh <k> --vcs <n> --seed <n> --packets <n> --warmup <n>
 *     --max-cycles <n> --service
 *
 * The same command, re-run after any number of kill -9s, completes the
 * journal and writes a byte-identical final json (the journal manifest
 * rejects a spec that doesn't match). Exit codes: 0 complete, 3
 * incomplete (workers died; resume to continue), 2 usage or journal
 * error.
 *
 * Progress lines on stderr are on when stderr is a terminal; NOC_PROGRESS
 * =0/1 overrides.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/sweep.h"
#include "farm/farm.h"
#include "farm/wire.h"

namespace {

using namespace noc;

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "noc_farm: %s (see the file header for options)\n",
                 msg);
    std::exit(2);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(csv.substr(pos));
            break;
        }
        out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    farm::FarmOptions opts;
    exp::SweepSpec spec;
    spec.name = "farm";
    bool resume = false;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage("missing argument value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--dir") opts.dir = need(i);
        else if (a == "--workers") opts.workers = std::atoi(need(i).c_str());
        else if (a == "--resume") resume = true;
        else if (a == "--ttl") opts.leaseTtlSec = std::atof(need(i).c_str());
        else if (a == "--out") opts.outPath = need(i);
        else if (a == "--provenance") opts.provenance = true;
        else if (a == "--name") spec.name = need(i);
        else if (a == "--archs") {
            for (const std::string &s : splitCsv(need(i))) {
                auto v = farm::parseArch(s);
                if (!v) usage("unknown arch in --archs");
                spec.archs.push_back(*v);
            }
        }
        else if (a == "--routings") {
            for (const std::string &s : splitCsv(need(i))) {
                auto v = farm::parseRouting(s);
                if (!v) usage("unknown routing in --routings");
                spec.routings.push_back(*v);
            }
        }
        else if (a == "--traffics") {
            for (const std::string &s : splitCsv(need(i))) {
                auto v = farm::parseTraffic(s);
                if (!v) usage("unknown traffic in --traffics");
                spec.traffics.push_back(*v);
            }
        }
        else if (a == "--rates") {
            for (const std::string &s : splitCsv(need(i)))
                spec.rates.push_back(std::atof(s.c_str()));
        }
        else if (a == "--mesh") {
            spec.base.meshWidth = std::atoi(need(i).c_str());
            spec.base.meshHeight = spec.base.meshWidth;
        }
        else if (a == "--vcs") spec.base.vcsPerPort = std::atoi(need(i).c_str());
        else if (a == "--seed")
            spec.base.seed = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--packets")
            spec.base.measurePackets =
                std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--warmup")
            spec.base.warmupPackets =
                std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--max-cycles")
            spec.base.maxCycles = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--service") spec.base.svc.enabled = true;
        else usage("unknown option");
    }
    if (opts.dir.empty())
        usage("--dir is required");
    if (resume && ::access((opts.dir + "/MANIFEST.json").c_str(), R_OK) != 0)
        usage("--resume given but the journal has no manifest");
    if (std::getenv("NOC_FARM_PROVENANCE") != nullptr &&
        std::strcmp(std::getenv("NOC_FARM_PROVENANCE"), "0") != 0)
        opts.provenance = true;

    opts.progress = exp::progressEnabled(::isatty(2) != 0);

    farm::FarmRun run = farm::runFarm(spec, opts);
    std::fprintf(stderr,
                 "noc_farm: %zu jobs, %zu reused, %zu run, "
                 "%d worker failure(s)\n",
                 run.jobs, run.reused, run.ran, run.workerFailures);
    if (!run.complete) {
        std::fprintf(stderr, "noc_farm: %s\n", run.error.c_str());
        return 3;
    }
    std::printf("%s\n", run.jsonPath.c_str());
    return 0;
}
