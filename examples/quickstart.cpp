/**
 * @file
 * Quickstart: simulate the three router architectures on an 8x8 mesh
 * with uniform random traffic and print the headline numbers the paper
 * reports — average latency, energy per packet and the PEF metric.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [injection-rate]
 */
#include <cstdio>
#include <cstdlib>

#include "sim/simulator.h"

int
main(int argc, char **argv)
{
    double rate = argc > 1 ? std::atof(argv[1]) : 0.2;

    std::printf("8x8 mesh, uniform random traffic, XY routing, "
                "%.2f flits/node/cycle\n\n", rate);
    std::printf("%-15s %12s %12s %12s %12s\n", "router", "latency",
                "throughput", "nJ/packet", "PEF");

    for (noc::RouterArch arch :
         {noc::RouterArch::Generic, noc::RouterArch::PathSensitive,
          noc::RouterArch::Roco}) {
        noc::SimConfig cfg;
        cfg.arch = arch;
        cfg.routing = noc::RoutingKind::XY;
        cfg.traffic = noc::TrafficKind::Uniform;
        cfg.injectionRate = rate;
        cfg.warmupPackets = 1000;
        cfg.measurePackets = 10000;

        noc::Simulator sim(cfg);
        noc::SimResult r = sim.run();
        std::printf("%-15s %12.2f %12.3f %12.3f %12.2f%s\n",
                    toString(arch), r.avgLatency, r.throughputFlits,
                    r.energyPerPacketNj, r.pef,
                    r.timedOut ? "  (timed out)" : "");
    }
    return 0;
}
