/**
 * @file
 * Full command-line front end: run any configuration of the simulator
 * and print a result row (or CSV for scripting).
 *
 *   rocosim_cli [options]
 *     --arch generic|ps|roco         router microarchitecture
 *     --routing xy|xyyx|adaptive     routing algorithm
 *     --traffic <name>               uniform transpose bitcomp hotspot
 *                                    tornado neighbor selfsimilar mpeg
 *                                    bitreverse shuffle trace
 *     --trace <file>                 trace file (with --traffic trace)
 *     --rate <f>                     flits/node/cycle
 *     --mesh <k>                     k x k mesh (default 8)
 *     --packets <n> --warmup <n>     measurement protocol
 *     --seed <n>
 *     --faults <n> --fault-class critical|noncritical --fault-seed <n>
 *     --shards <n>                   run on the sharded engine (src/par);
 *                                    results are bit-identical to serial
 *     --threads <n>                  worker-thread budget; without
 *                                    --shards the run shards itself up
 *                                    to this many ways
 *     --service                      closed-loop request/reply service
 *                                    (src/svc): finite-MSHR endpoints,
 *                                    QoS tiers, per-class stats
 *     --mshrs <n>                    outstanding-request window per node
 *     --service-latency <n>          request-delivery -> reply delay
 *     --high-frac <f>                fraction of requests in the high
 *                                    (latency) QoS tier
 *     --csv                          machine-readable one-line output
 *     --csv-header                   print the CSV column names
 *
 *   e.g. rocosim_cli --arch roco --routing adaptive --rate 0.25
 *        rocosim_cli --arch generic --faults 2 --fault-class critical
 *        rocosim_cli --arch generic --routing xyyx --service --rate 0.1
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "exp/sweep.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"

namespace {

using namespace noc;

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "rocosim_cli: %s (see the file header for "
                         "options)\n", msg);
    std::exit(2);
}

RouterArch
parseArch(const std::string &s)
{
    if (s == "generic") return RouterArch::Generic;
    if (s == "ps" || s == "pathsensitive") return RouterArch::PathSensitive;
    if (s == "roco") return RouterArch::Roco;
    usage("unknown --arch");
}

RoutingKind
parseRouting(const std::string &s)
{
    if (s == "xy") return RoutingKind::XY;
    if (s == "xyyx") return RoutingKind::XYYX;
    if (s == "adaptive") return RoutingKind::Adaptive;
    usage("unknown --routing");
}

TrafficKind
parseTraffic(const std::string &s)
{
    if (s == "uniform") return TrafficKind::Uniform;
    if (s == "transpose") return TrafficKind::Transpose;
    if (s == "bitcomp") return TrafficKind::BitComplement;
    if (s == "hotspot") return TrafficKind::Hotspot;
    if (s == "tornado") return TrafficKind::Tornado;
    if (s == "neighbor") return TrafficKind::NearestNeighbor;
    if (s == "selfsimilar") return TrafficKind::SelfSimilar;
    if (s == "mpeg") return TrafficKind::Mpeg;
    if (s == "bitreverse") return TrafficKind::BitReverse;
    if (s == "shuffle") return TrafficKind::Shuffle;
    if (s == "trace") return TrafficKind::Trace;
    usage("unknown --traffic");
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg;
    int numFaults = 0;
    FaultClass faultClass = FaultClass::RouterCentricCritical;
    std::uint64_t faultSeed = 1;
    int threads = 0;
    bool csv = false;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage("missing argument value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--arch") cfg.arch = parseArch(need(i));
        else if (a == "--routing") cfg.routing = parseRouting(need(i));
        else if (a == "--traffic") cfg.traffic = parseTraffic(need(i));
        else if (a == "--trace") cfg.traceFile = need(i);
        else if (a == "--rate") cfg.injectionRate = std::atof(need(i).c_str());
        else if (a == "--mesh") {
            cfg.meshWidth = std::atoi(need(i).c_str());
            cfg.meshHeight = cfg.meshWidth;
        }
        else if (a == "--packets")
            cfg.measurePackets = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--warmup")
            cfg.warmupPackets = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--seed")
            cfg.seed = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--faults") numFaults = std::atoi(need(i).c_str());
        else if (a == "--fault-seed")
            faultSeed = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--fault-class") {
            std::string c = need(i);
            if (c == "critical")
                faultClass = FaultClass::RouterCentricCritical;
            else if (c == "noncritical")
                faultClass = FaultClass::MessageCentricNonCritical;
            else
                usage("unknown --fault-class");
        }
        else if (a == "--shards") cfg.shards = std::atoi(need(i).c_str());
        else if (a == "--threads") threads = std::atoi(need(i).c_str());
        else if (a == "--service") cfg.svc.enabled = true;
        else if (a == "--mshrs")
            cfg.svc.mshrsPerNode = std::atoi(need(i).c_str());
        else if (a == "--service-latency")
            cfg.svc.serviceLatency = std::strtoull(need(i).c_str(),
                                                   nullptr, 10);
        else if (a == "--high-frac")
            cfg.svc.highTierFraction = std::atof(need(i).c_str());
        else if (a == "--csv") csv = true;
        else if (a == "--csv-header") {
            std::puts("arch,routing,traffic,rate,faults,latency,p50,"
                      "p99,throughput,completion,nj_per_packet,edp,pef,"
                      "timed_out");
            return 0;
        }
        else usage("unknown option");
    }

    // --threads gives a budget without pinning a shard count: an
    // explicit --shards (or NOC_SHARDS) wins; otherwise the engine
    // shards the mesh up to `threads` ways.  Either way results are
    // bit-identical to serial — these are wall-clock knobs only.
    if (threads > 0 && cfg.shards == 0 && !std::getenv("NOC_SHARDS"))
        cfg.shards = threads;

    cfg.validate();
    MeshTopology topo(cfg.meshWidth, cfg.meshHeight);
    std::vector<FaultSpec> faults;
    if (numFaults > 0) {
        faults = placeRandomFaults(topo, faultClass, numFaults,
                                   cfg.vcsPerPort, faultSeed);
    }

    // One-point sweep through SweepRunner(1): identical simulation to
    // a bare Simulator (pool of one, no auto-shard at spare == 1), but
    // it buys the per-point progress hook. Progress defaults on when
    // stderr is a terminal; NOC_PROGRESS=0/1 overrides.
    exp::SweepSpec spec;
    spec.name = "cli";
    spec.base = cfg;
    if (!faults.empty())
        spec.faultSets.push_back({"cli", faults});
    exp::ProgressFn progress;
    if (exp::progressEnabled(::isatty(2) != 0)) {
        progress = [](const exp::SweepProgress &p) {
            std::fprintf(stderr,
                         "[progress] %zu/%zu done: %llu cycles in %.1f ms\n",
                         p.done, p.total,
                         static_cast<unsigned long long>(p.cycles),
                         p.wallMs);
        };
    }
    exp::SweepResults res = exp::SweepRunner(1).run(spec, progress);
    SimResult r = res.results[0].result;

    if (csv) {
        std::printf("%s,%s,%s,%.3f,%d,%.3f,%.3f,%.3f,%.4f,%.4f,%.4f,"
                    "%.3f,%.3f,%d\n",
                    toString(cfg.arch), toString(cfg.routing),
                    toString(cfg.traffic), cfg.injectionRate, numFaults,
                    r.avgLatency, r.p50Latency, r.p99Latency,
                    r.throughputFlits, r.completion, r.energyPerPacketNj,
                    r.edp, r.pef, r.timedOut ? 1 : 0);
        return 0;
    }

    std::printf("%dx%d mesh | %s | %s routing | %s @ %.2f f/n/c",
                cfg.meshWidth, cfg.meshHeight, toString(cfg.arch),
                toString(cfg.routing), toString(cfg.traffic),
                cfg.injectionRate);
    if (numFaults)
        std::printf(" | %d %s faults", numFaults,
                    faultClass == FaultClass::RouterCentricCritical
                        ? "critical"
                        : "non-critical");
    std::puts("");
    std::printf("  latency      %8.2f cycles (p50 %.1f, p99 %.1f, max "
                "%.0f)\n", r.avgLatency, r.p50Latency, r.p99Latency,
                r.maxLatency);
    std::printf("  throughput   %8.3f flits/node/cycle\n",
                r.throughputFlits);
    std::printf("  completion   %8.3f\n", r.completion);
    std::printf("  energy       %8.3f nJ/packet (dynamic %.1f%%)\n",
                r.energyPerPacketNj,
                100.0 * r.energy.dynamicPj() / r.energy.totalPj());
    std::printf("  EDP / PEF    %8.2f / %.2f\n", r.edp, r.pef);
    if (cfg.svc.enabled) {
        std::printf("  service      %llu replies | %llu window-deferred "
                    "| %llu timeouts | drained @ cycle %llu\n",
                    static_cast<unsigned long long>(r.replyCount),
                    static_cast<unsigned long long>(r.mshrThrottled),
                    static_cast<unsigned long long>(r.svcTimeouts),
                    static_cast<unsigned long long>(r.drainCycles));
        for (const SimResult::ClassResult &c : r.classes) {
            std::printf("    %-9s %6llu pkts | lat %7.2f (p99 %7.1f)",
                        c.name,
                        static_cast<unsigned long long>(c.delivered),
                        c.avgLatency, c.p99Latency);
            if (c.rttCount > 0)
                std::printf(" | rtt %7.2f (p99 %7.1f) | %llu SLO "
                            "misses",
                            c.avgRtt, c.p99Rtt,
                            static_cast<unsigned long long>(
                                c.sloViolations));
            std::puts("");
        }
    }
    if (r.timedOut)
        std::puts("  (run hit the cycle budget: saturated or blocked)");
    return 0;
}
