/**
 * @file
 * noc_model: exhaustive liveness audit of the shipped architecture x
 * routing matrix via the explicit-state model checker (src/model).
 *
 * For every selected (architecture, routing) pair it proves, on 2x2
 * and 3x3 meshes:
 *   - starvation-freedom of the allocators (component tier: real
 *     round-robin arbiters and the Mirroring-Effect SA with its 2:1
 *     global arbiter, explored exhaustively);
 *   - livelock-freedom (a monotone progress measure on every reachable
 *     transition of the packet micro-model);
 *   - graceful-degradation soundness across the Table 3 fault matrix
 *     (every in-flight packet delivered or deterministically dropped;
 *     no stranding; row/column module independence under RoCo).
 *
 * Usage:
 *   noc_model [--arch roco|generic|ps] [--routing xy|xyyx|adaptive]
 *             audit the (filtered) matrix
 *   noc_model --refine
 *             additionally replay every scenario through the real
 *             Simulator pipeline and cross-check (model/refine.h)
 *   noc_model --broken greedy-tie|endless-packets|nonminimal|no-drop
 *             run a deliberately broken variant; exits 0 when the
 *             checker rejects it with a rendered counterexample
 *
 * Exit status: 0 when every audited property has the expected verdict,
 * 1 otherwise, 2 on usage errors.
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "model/arbiter_check.h"
#include "model/liveness.h"
#include "model/refine.h"

using namespace noc;

namespace {

constexpr RouterArch kArchs[] = {RouterArch::Roco, RouterArch::Generic,
                                 RouterArch::PathSensitive};
constexpr RoutingKind kRoutings[] = {RoutingKind::XY, RoutingKind::XYYX,
                                     RoutingKind::Adaptive};

int
auditMatrix(const char *archFilter, const char *routingFilter,
            bool refine)
{
    std::printf("noc_model: exhaustive liveness audit%s\n\n",
                refine ? " + Simulator refinement" : "");
    int failures = 0;

    std::printf("component tier (real arbiter objects):\n");
    for (int size : {2, 3, 5}) {
        model::ArbiterCheckResult r =
            model::checkRoundRobinBoundedWait(size);
        std::printf("  %s\n", r.summary().c_str());
        if (!r.ok) {
            std::printf("%s", r.counterexample.c_str());
            ++failures;
        }
    }
    {
        model::ArbiterCheckResult r =
            model::checkMirrorAllocatorBoundedWait();
        std::printf("  %s\n", r.summary().c_str());
        if (!r.ok) {
            std::printf("%s", r.counterexample.c_str());
            ++failures;
        }
    }

    for (RouterArch arch : kArchs) {
        if (archFilter && std::strcmp(toString(arch), archFilter) != 0)
            continue;
        for (RoutingKind kind : kRoutings) {
            if (routingFilter &&
                std::strcmp(toString(kind), routingFilter) != 0)
                continue;
            std::printf("\n%s / %s:\n", toString(arch), toString(kind));
            for (int dim : {2, 3}) {
                for (const model::Scenario &sc :
                     model::scenarioMatrix(arch, kind, dim, dim)) {
                    model::ModelResult r = model::explore(sc);
                    std::printf("  %s\n", r.summary().c_str());
                    if (!r.ok) {
                        std::printf("%s", r.counterexample.c_str());
                        ++failures;
                        continue;
                    }
                    if (refine) {
                        model::RefineResult rr =
                            model::replayScenario(sc);
                        std::printf("  %s\n", rr.summary().c_str());
                        if (!rr.ok)
                            ++failures;
                    }
                }
            }
        }
    }

    std::printf("\n%s\n",
                failures == 0
                    ? "All liveness properties proved (starvation, "
                      "livelock, degradation)."
                    : "LIVENESS VIOLATION IN A SHIPPED CONFIGURATION.");
    return failures == 0 ? 0 : 1;
}

/**
 * Runs one deliberately broken variant; "pass" means the checker
 * rejects it and renders a concrete counterexample.
 */
int
auditBroken(const char *which)
{
    std::printf("noc_model: deliberately broken variant '%s'\n\n", which);
    bool rejected = false;
    std::string trace;

    if (std::strcmp(which, "greedy-tie") == 0) {
        // Non-rotating 2:1 global arbiter: the crossed pair starves.
        model::MirrorCheckOptions o;
        o.rotatingTie = false;
        model::ArbiterCheckResult r =
            model::checkMirrorAllocatorBoundedWait(o);
        std::printf("  %s\n", r.summary().c_str());
        rejected = !r.ok;
        trace = r.counterexample;
    } else if (std::strcmp(which, "endless-packets") == 0) {
        // No packet boundaries: two straight streams outweigh a
        // crossed requester forever.
        model::MirrorCheckOptions o;
        o.packetBoundaries = false;
        model::ArbiterCheckResult r =
            model::checkMirrorAllocatorBoundedWait(o);
        std::printf("  %s\n", r.summary().c_str());
        rejected = !r.ok;
        trace = r.counterexample;
    } else if (std::strcmp(which, "nonminimal") == 0) {
        model::ModelResult r = model::explore(
            model::brokenModelScenario(
                model::Mutation::NonMinimalRouting));
        std::printf("  %s\n", r.summary().c_str());
        rejected = !r.ok;
        trace = r.counterexample;
    } else if (std::strcmp(which, "no-drop") == 0) {
        model::ModelResult r = model::explore(
            model::brokenModelScenario(model::Mutation::NoFaultDrop));
        std::printf("  %s\n", r.summary().c_str());
        rejected = !r.ok;
        trace = r.counterexample;
    } else {
        std::fprintf(stderr, "noc_model: unknown --broken '%s'\n",
                     which);
        return 2;
    }

    if (!rejected) {
        std::printf(
            "\nERROR: checker failed to reject the broken variant\n");
        return 1;
    }
    std::printf("\ncounterexample trace:\n%s", trace.c_str());
    std::printf("\nBroken variant correctly rejected.\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *archFilter = nullptr;
    const char *routingFilter = nullptr;
    const char *broken = nullptr;
    bool refine = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--arch") == 0 && i + 1 < argc) {
            archFilter = argv[++i];
        } else if (std::strcmp(argv[i], "--routing") == 0 &&
                   i + 1 < argc) {
            routingFilter = argv[++i];
        } else if (std::strcmp(argv[i], "--broken") == 0 &&
                   i + 1 < argc) {
            broken = argv[++i];
        } else if (std::strcmp(argv[i], "--refine") == 0) {
            refine = true;
        } else {
            std::fprintf(stderr,
                         "usage: noc_model [--arch A] [--routing R] "
                         "[--refine] [--broken VARIANT]\n");
            return 2;
        }
    }
    return broken ? auditBroken(broken)
                  : auditMatrix(archFilter, routingFilter, refine);
}
