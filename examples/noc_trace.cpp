/**
 * @file
 * Flit-lifecycle tracing front end: run one configuration with the
 * observability recorder attached and export a Chrome/Perfetto
 * trace_event JSON (load it at https://ui.perfetto.dev) plus the
 * network counter dump, and print the per-stage residency percentiles.
 *
 *   noc_trace [options]
 *     --arch generic|ps|roco   router microarchitecture (default roco)
 *     --mesh <k>               k x k mesh (default 8)
 *     --rate <f>               flits/node/cycle (default 0.15)
 *     --packets <n>            measured packets (default 400)
 *     --warmup <n>             warm-up packets (default 100)
 *     --sample <n>             trace 1 of every n packets (default 1)
 *     --faulty                 inject the Table 3 router-centric
 *                              critical faults on the mid-mesh node
 *     --out <file>             Perfetto JSON path (default
 *                              noc_trace.json; counters go to
 *                              <file>.counters.json)
 *
 * Needs an -DNOC_OBS=ON build; without the compiled-in hooks the run
 * still works but records nothing, so the tool says so and exits 0.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "obs/counters.h"
#include "obs/obs.h"
#include "obs/perfetto.h"
#include "obs/recorder.h"
#include "sim/simulator.h"

namespace {

using namespace noc;

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "noc_trace: %s (see the file header for "
                         "options)\n", msg);
    std::exit(2);
}

RouterArch
parseArch(const std::string &s)
{
    if (s == "generic") return RouterArch::Generic;
    if (s == "ps" || s == "pathsensitive") return RouterArch::PathSensitive;
    if (s == "roco") return RouterArch::Roco;
    usage("unknown --arch");
}

/**
 * The Table 3 router-centric critical-pathway set, planted on the
 * mid-mesh node: a crossbar fault in the row module and a VA fault in
 * the column module, so a RoCo run shows both degradation modes
 * (module blocked vs served by its sibling) while generic / PS runs
 * show the whole node going off-line.
 */
std::vector<FaultSpec>
midMeshCriticalFaults(const SimConfig &cfg)
{
    NodeId mid = static_cast<NodeId>(
        (cfg.meshHeight / 2) * cfg.meshWidth + cfg.meshWidth / 2);
    FaultSpec xbar;
    xbar.node = mid;
    xbar.component = FaultComponent::Crossbar;
    xbar.module = Module::Row;
    FaultSpec va;
    va.node = mid;
    va.component = FaultComponent::VaArbiter;
    va.module = Module::Column;
    return {xbar, va};
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg;
    cfg.arch = RouterArch::Roco;
    cfg.routing = RoutingKind::XY;
    cfg.traffic = TrafficKind::Uniform;
    cfg.injectionRate = 0.15;
    cfg.warmupPackets = 100;
    cfg.measurePackets = 400;
    bool faulty = false;
    std::uint64_t sample = 1;
    std::string out = "noc_trace.json";

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage("missing argument value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--arch") cfg.arch = parseArch(need(i));
        else if (a == "--mesh") {
            cfg.meshWidth = std::atoi(need(i).c_str());
            cfg.meshHeight = cfg.meshWidth;
        }
        else if (a == "--rate") cfg.injectionRate = std::atof(need(i).c_str());
        else if (a == "--packets")
            cfg.measurePackets = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--warmup")
            cfg.warmupPackets = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--sample")
            sample = std::strtoull(need(i).c_str(), nullptr, 10);
        else if (a == "--faulty") faulty = true;
        else if (a == "--out") out = need(i);
        else usage("unknown option");
    }
    cfg.validate();

    if (!obs::kBuiltIn) {
        std::puts("noc_trace: this build has NOC_OBS=OFF — the tracing "
                  "hooks are compiled out.\nReconfigure with "
                  "-DNOC_OBS=ON (or `cmake --preset obs`) to record "
                  "traces.");
        return 0;
    }

    std::vector<FaultSpec> faults;
    if (faulty)
        faults = midMeshCriticalFaults(cfg);

    // Attach the recorder explicitly (forced on) rather than via the
    // NOC_TRACE env var, so the tool traces regardless of environment.
    obs::Recorder::Options opt;
    opt.nodes = cfg.meshWidth * cfg.meshHeight;
    opt.meshWidth = cfg.meshWidth;
    opt.meshHeight = cfg.meshHeight;
    opt.arch = cfg.arch;
    opt.sampleEvery = sample;
    auto rec = std::make_shared<obs::Recorder>(opt);

    Simulator sim(cfg, faults);
    sim.attachObserver(rec);
    SimResult r = sim.run();

    std::printf("%dx%d %s | XY | uniform @ %.2f f/n/c%s | sampled 1/%llu\n",
                cfg.meshWidth, cfg.meshHeight, toString(cfg.arch),
                cfg.injectionRate,
                faulty ? " | Table-3 critical faults @ mid-mesh" : "",
                static_cast<unsigned long long>(sample));
    std::printf("  avg latency %.2f cycles, completion %.3f%s\n\n",
                r.avgLatency, r.completion,
                r.timedOut ? " (timed out)" : "");

    obs::Summary s = rec->summary();
    std::printf("  %-14s %10s %8s %8s %8s %8s\n", "stage residency",
                "samples", "p50", "p90", "p99", "p999");
    for (int st = 0; st < obs::kStageCount; ++st) {
        const char *label = obs::residencyLabel(static_cast<obs::Stage>(st));
        if (label == nullptr)
            continue;
        const obs::HdrHistogram &h =
            s.residency[static_cast<std::size_t>(st)];
        std::printf("  %-14s %10llu %8.1f %8.1f %8.1f %8.1f\n", label,
                    static_cast<unsigned long long>(h.count()),
                    h.percentile(0.50), h.percentile(0.90),
                    h.percentile(0.99), h.percentile(0.999));
    }
    std::printf("  %-14s %10llu %8.1f %8.1f %8.1f %8.1f\n", "end-to-end",
                static_cast<unsigned long long>(s.endToEnd.count()),
                s.endToEnd.percentile(0.50), s.endToEnd.percentile(0.90),
                s.endToEnd.percentile(0.99), s.endToEnd.percentile(0.999));

    obs::CounterSummary cs = obs::snapshot(sim.network(), r.cycles);
    std::printf("\n  link util %.4f | crossbar grants/cycle %.4f | "
                "early-eject rate %.4f | mirror-tie rate %.4f\n",
                cs.linkUtilization, cs.crossbarGrantRate,
                cs.earlyEjectionRate, cs.mirrorTieRate);
    if (s.counters.ringDropped > 0)
        std::printf("  (%llu ring slices dropped — raise NOC_TRACE_BUF "
                    "or --sample)\n",
                    static_cast<unsigned long long>(s.counters.ringDropped));

    if (!obs::writePerfetto(*rec, out)) {
        std::fprintf(stderr, "noc_trace: cannot write %s\n", out.c_str());
        return 1;
    }
    std::string cpath = out + ".counters.json";
    std::FILE *cf = std::fopen(cpath.c_str(), "w");
    if (cf != nullptr) {
        std::string cjson = obs::countersJson(cs);
        std::fwrite(cjson.data(), 1, cjson.size(), cf);
        std::fclose(cf);
    }
    std::printf("\nwrote Perfetto trace %s (open at ui.perfetto.dev) and "
                "%s\n", out.c_str(), cpath.c_str());
    return 0;
}
