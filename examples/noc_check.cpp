/**
 * @file
 * noc_check: audits the deadlock-freedom of every shipped architecture x
 * routing x VC-configuration combination by building the extended
 * channel dependency graph and proving it acyclic (see
 * src/check/deadlock.h).
 *
 * Usage:
 *   noc_check [--mesh WxH]   audit the full shipped matrix (default 8x8)
 *   noc_check --broken       audit deliberately mis-balanced RoCo VC
 *                            tables and print their counterexample
 *                            cycles (exits 0 when every broken table is
 *                            correctly rejected)
 *   noc_check --service      audit the closed-loop service layer: prove
 *                            the protocol-deadlock avoidance scheme each
 *                            shipped arch x routing combination resolves
 *                            to, then confirm the prover rejects the
 *                            shared-pool and forced-RoCo-partition
 *                            schemes with counterexample cycles
 *
 * Exit status: 0 when every audited configuration has the expected
 * verdict, 1 otherwise.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "check/deadlock.h"
#include "common/config.h"
#include "common/types.h"
#include "svc/protocol.h"
#include "topology/mesh.h"

using namespace noc;

namespace {

constexpr RoutingKind kRoutings[] = {RoutingKind::XY, RoutingKind::XYYX,
                                     RoutingKind::Adaptive};

int
auditShipped(int width, int height)
{
    MeshTopology topo(width, height);
    std::printf("noc_check: %dx%d mesh, shipped VC configurations\n\n",
                width, height);
    int failures = 0;
    for (RoutingKind kind : kRoutings) {
        check::ProofResult results[3] = {
            check::proveRoco(topo, kind,
                             check::RocoCheckOptions::shipped(kind)),
            check::proveGeneric(topo, kind, 3),
            check::provePathSensitive(topo, kind, 3),
        };
        for (const check::ProofResult &r : results) {
            std::printf("  %s\n", r.summary().c_str());
            if (!r.deadlockFree) {
                std::printf("%s", r.renderCycle().c_str());
                ++failures;
            }
        }
    }
    std::printf("\n%s\n", failures == 0
                              ? "All shipped configurations proved "
                                "deadlock-free."
                              : "DEADLOCK-CAPABLE CONFIGURATION SHIPPED.");
    return failures == 0 ? 0 : 1;
}

/**
 * Audits intentionally broken RoCo VC tables; "pass" means the prover
 * rejects them with a concrete counterexample cycle.
 */
int
auditBroken(int width, int height)
{
    MeshTopology topo(width, height);
    std::printf("noc_check: %dx%d mesh, deliberately broken RoCo VC "
                "tables\n\n",
                width, height);

    struct BrokenCase {
        const char *name;
        check::RocoCheckOptions opts;
    };
    check::RocoCheckOptions noPartition =
        check::RocoCheckOptions::shipped(RoutingKind::XYYX);
    noPartition.orderPartition = false;
    check::RocoCheckOptions merged =
        check::RocoCheckOptions::shipped(RoutingKind::XYYX);
    merged.orderPartition = false;
    merged.mergeTurnClasses = true;
    const BrokenCase cases[] = {
        {"XY-YX without the order partition (both dimension orders "
         "share every dx/dy slot)",
         noPartition},
        {"XY-YX with turn classes merged into one unrestricted pool",
         merged},
    };

    int failures = 0;
    for (const BrokenCase &c : cases) {
        check::ProofResult r =
            check::proveRoco(topo, RoutingKind::XYYX, c.opts);
        std::printf("  case: %s\n  %s\n", c.name, r.summary().c_str());
        if (r.deadlockFree) {
            std::printf("  ERROR: prover failed to reject this table\n\n");
            ++failures;
        } else {
            std::printf("%s\n", r.renderCycle().c_str());
        }
    }
    std::printf("%s\n", failures == 0
                            ? "All broken tables correctly rejected."
                            : "PROVER MISSED A BROKEN TABLE.");
    return failures == 0 ? 0 : 1;
}

/**
 * Audits the closed-loop service layer.  Every shipped arch x routing
 * combination must prove deadlock-free under the avoidance scheme its
 * config resolves to, and the two known-unsound schemes (shared pool;
 * the class partition forced onto RoCo's module-keyed injection
 * classes) must be rejected with concrete counterexample cycles.
 */
int
auditService(int width, int height)
{
    MeshTopology topo(width, height);
    std::printf("noc_check: %dx%d mesh, closed-loop service protocol "
                "layer\n\n",
                width, height);

    constexpr RouterArch kServiceArchs[] = {
        RouterArch::Generic, RouterArch::Roco, RouterArch::PathSensitive};

    int failures = 0;
    for (RouterArch arch : kServiceArchs) {
        for (RoutingKind kind : kRoutings) {
            SimConfig cfg;
            cfg.meshWidth = width;
            cfg.meshHeight = height;
            cfg.arch = arch;
            cfg.routing = kind;
            cfg.svc.enabled = true;
            check::ProofResult r = check::proveService(cfg);
            std::printf("  scheme=%-16s %s\n",
                        svc::toString(svc::resolveScheme(cfg)),
                        r.summary().c_str());
            if (!r.deadlockFree) {
                std::printf("%s", r.renderCycle().c_str());
                ++failures;
            }
        }
    }

    struct UnsoundCase {
        const char *name;
        check::ProofResult result;
    };
    const UnsoundCase cases[] = {
        {"generic/XYYX with requests and replies in one shared VC pool",
         check::proveServiceGeneric(topo, RoutingKind::XYYX, 3,
                                    svc::AvoidanceScheme::SharedPool)},
        {"RoCo/XYYX with the class partition forced (module-keyed "
         "injection classes share InjYx between straight-column "
         "requests and replies)",
         check::proveServiceRoco(
             topo, RoutingKind::XYYX,
             check::RocoCheckOptions::shipped(RoutingKind::XYYX),
             svc::AvoidanceScheme::ClassPartition)},
    };
    std::printf("\n  known-unsound schemes (must be rejected):\n");
    for (const UnsoundCase &c : cases) {
        std::printf("  case: %s\n  %s\n", c.name,
                    c.result.summary().c_str());
        if (c.result.deadlockFree) {
            std::printf("  ERROR: prover failed to reject this "
                        "scheme\n\n");
            ++failures;
        } else {
            std::printf("%s\n", c.result.renderCycle().c_str());
        }
    }

    std::printf("%s\n",
                failures == 0
                    ? "All service configurations proved protocol-"
                      "deadlock-free."
                    : "SERVICE PROTOCOL AUDIT FAILED.");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    int width = 8;
    int height = 8;
    bool broken = false;
    bool service = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--broken") == 0) {
            broken = true;
        } else if (std::strcmp(argv[i], "--service") == 0) {
            service = true;
        } else if (std::strcmp(argv[i], "--mesh") == 0 && i + 1 < argc) {
            if (std::sscanf(argv[++i], "%dx%d", &width, &height) != 2 ||
                width < 2 || height < 2) {
                std::fprintf(stderr, "noc_check: bad --mesh '%s'\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr, "usage: noc_check [--mesh WxH] "
                                 "[--broken] [--service]\n");
            return 2;
        }
    }
    if (service)
        return auditService(width, height);
    return broken ? auditBroken(width, height)
                  : auditShipped(width, height);
}
