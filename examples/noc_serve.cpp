/**
 * @file
 * Long-running simulation server / one-shot client (src/farm serve).
 *
 *   noc_serve --socket <path>                 run the server
 *   noc_serve --socket <path> --request '<json>'
 *                                             one-shot client: send the
 *                                             request line, print the
 *                                             reply line, exit
 *     --verbose      per-request stderr log (server mode)
 *
 * Protocol (line-delimited flat JSON; see src/farm/serve.h):
 *   {"op": "ping"}
 *   {"op": "sim", "arch": "roco", "routing": "xy", "rate": 0.1,
 *    "mesh": 4, "warmup": 50, "measure": 300}
 *   {"op": "sweep", "rates": "0.1,0.2", ...}
 *   {"op": "stats"}      request + warm-prover-cache counters
 *   {"op": "drain"}      graceful shutdown (as does SIGTERM)
 *
 * The server keeps the memoized deadlock/liveness proof caches warm
 * across requests — the first sim of a design pays for its proofs,
 * repeats are proof-free (visible in "stats").
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "farm/serve.h"

int
main(int argc, char **argv)
{
    noc::farm::ServeOptions opts;
    std::string request;
    // Server-friendly defaults: small, fast runs unless the request
    // says otherwise.
    opts.base.meshWidth = opts.base.meshHeight = 4;
    opts.base.warmupPackets = 50;
    opts.base.measurePackets = 300;
    opts.base.maxCycles = 100000;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "noc_serve: missing value for %s\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--socket")
            opts.socketPath = need();
        else if (a == "--request")
            request = need();
        else if (a == "--verbose")
            opts.verbose = true;
        else {
            std::fprintf(stderr, "noc_serve: unknown option %s\n",
                         a.c_str());
            return 2;
        }
    }
    if (opts.socketPath.empty()) {
        std::fprintf(stderr, "noc_serve: --socket is required\n");
        return 2;
    }

    if (!request.empty()) {
        std::string err;
        auto reply = noc::farm::serveRequest(opts.socketPath, request, &err);
        if (!reply) {
            std::fprintf(stderr, "noc_serve: %s\n", err.c_str());
            return 1;
        }
        std::printf("%s\n", reply->c_str());
        return 0;
    }

    return noc::farm::runServe(opts);
}
