/**
 * @file
 * Driving the library below the Simulator: build a Network, inject
 * hand-crafted packets, step the clock yourself and read per-node
 * state. This is the API a custom workload (e.g. a trace replayer or
 * a CPU model) would use.
 *
 *   ./build/examples/custom_network
 */
#include <cstdio>

#include "sim/network.h"

int
main()
{
    using namespace noc;

    SimConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.arch = RouterArch::Roco;
    cfg.routing = RoutingKind::Adaptive;
    cfg.injectionRate = 0.0; // we drive every packet by hand

    Network net(cfg);
    std::uint64_t nextId = 1;

    // An all-to-one burst: every node sends one packet to node 15 at
    // cycle 0 — a worst-case ejection hotspot.
    for (NodeId src = 0; src < 15; ++src)
        net.nic(src).enqueuePacket(15, 0, nextId, true);

    // Then a pipelined stream along the bottom row.
    for (Cycle t = 0; t < 5; ++t)
        net.nic(0).enqueuePacket(3, 0, nextId, true);

    Cycle now = 0;
    while (now < 2000) {
        net.step(now, false, false);
        ++now;
        bool queued = false;
        for (int i = 0; i < net.numNodes(); ++i)
            queued = queued ||
                     net.nic(static_cast<NodeId>(i)).queuedFlits() > 0;
        if (!queued && net.flitsInFlight() == 0)
            break;
    }

    std::printf("drained after %llu cycles\n",
                static_cast<unsigned long long>(now));
    std::printf("node 15 received %llu packets (avg latency %.1f, max "
                "%.0f cycles)\n",
                static_cast<unsigned long long>(
                    net.nic(15).deliveredPackets()),
                net.nic(15).latency().mean(),
                net.nic(15).latency().max());
    std::printf("node 3 received %llu packets (avg latency %.1f)\n",
                static_cast<unsigned long long>(
                    net.nic(3).deliveredPackets()),
                net.nic(3).latency().mean());

    ActivityCounters a = net.totalActivity();
    std::printf("\nactivity: %llu buffer writes, %llu crossbar "
                "traversals, %llu early ejections\n",
                static_cast<unsigned long long>(a.bufferWrites),
                static_cast<unsigned long long>(a.crossbarTraversals),
                static_cast<unsigned long long>(a.earlyEjections));

    // Per-router contention probes are exposed too.
    const Router &center = net.router(5);
    std::printf("router 5 row-input contention: %.3f over %llu "
                "arbitration events\n",
                center.rowContention().ratio(),
                static_cast<unsigned long long>(
                    center.rowContention().trials()));
    return 0;
}
