/**
 * @file
 * Activity and temperature heat maps: run a workload and render the
 * mesh as ASCII grids — crossbar traversals per router, and the
 * lumped-RC tile temperatures. Makes hotspot structure (and the
 * RoCo modules' load split) visible at a glance.
 *
 *   ./build/examples/heatmap [pattern] [rate]
 *   e.g. ./build/examples/heatmap hotspot 0.25
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/counters.h"
#include "power/thermal.h"
#include "sim/network.h"

namespace {

noc::TrafficKind
parsePattern(const char *s)
{
    using enum noc::TrafficKind;
    if (!std::strcmp(s, "transpose")) return Transpose;
    if (!std::strcmp(s, "hotspot")) return Hotspot;
    if (!std::strcmp(s, "tornado")) return Tornado;
    if (!std::strcmp(s, "bitreverse")) return BitReverse;
    return Uniform;
}

/** Renders per-node values as a W x H grid of 0-9 intensity digits. */
void
renderGrid(const char *title, const noc::MeshTopology &topo,
           const std::vector<double> &value)
{
    double lo = *std::min_element(value.begin(), value.end());
    double hi = *std::max_element(value.begin(), value.end());
    std::printf("%s (min %.2f, max %.2f)\n", title, lo, hi);
    for (int y = topo.height() - 1; y >= 0; --y) {
        std::printf("  ");
        for (int x = 0; x < topo.width(); ++x) {
            double v = value[topo.node({x, y})];
            int level = hi > lo ? static_cast<int>(9.999 * (v - lo) /
                                                   (hi - lo))
                                : 0;
            std::printf("%d ", level);
        }
        std::puts("");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace noc;
    TrafficKind traffic =
        argc > 1 ? parsePattern(argv[1]) : TrafficKind::Hotspot;
    double rate = argc > 2 ? std::atof(argv[2]) : 0.25;

    SimConfig cfg;
    cfg.arch = RouterArch::Roco;
    cfg.traffic = traffic;
    cfg.injectionRate = rate;

    Network net(cfg);
    ThermalParams tp;
    tp.cThetaJPerK = 1e-7; // fast thermals: steady state within the run
    ThermalTracker tracker(net, tp);

    std::printf("RoCo 8x8, %s traffic @ %.2f flits/node/cycle, XY "
                "routing\n\n", toString(traffic), rate);

    Cycle now = 0;
    for (int w = 0; w < 40; ++w) {
        for (int c = 0; c < 500; ++c)
            net.step(now++, true, false);
        tracker.sample(500);
    }

    const MeshTopology &topo = net.topology();
    std::vector<double> xbar =
        obs::perRouter(net, obs::Metric::CrossbarTraversals);
    std::vector<double> temp(64);
    for (NodeId n = 0; n < 64; ++n)
        temp[n] = tracker.model().temperature(n);
    renderGrid("crossbar traversals per router", topo, xbar);
    std::puts("");
    renderGrid("early ejections per router", topo,
               obs::perRouter(net, obs::Metric::EarlyEjections));
    std::puts("");
    renderGrid("tile temperature (C)", topo, temp);
    std::printf("\nhottest tile: node %u at %.2f C\n",
                static_cast<unsigned>(tracker.model().hottestNode()),
                tracker.model().maxTemperature());

    obs::CounterSummary cs = obs::snapshot(net, now);
    std::printf("\nnetwork rates: link util %.4f, crossbar grants/cycle "
                "%.4f, early-eject rate %.4f, mirror-tie rate %.4f\n",
                cs.linkUtilization, cs.crossbarGrantRate,
                cs.earlyEjectionRate, cs.mirrorTieRate);
    return 0;
}
