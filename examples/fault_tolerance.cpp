/**
 * @file
 * Graceful degradation demo: walk through every fault type of the
 * paper's Section 4 on a single node and show how each architecture
 * reacts — the RoCo hardware-recycling story next to the baselines'
 * whole-node loss.
 *
 *   ./build/examples/fault_tolerance
 */
#include <cstdio>

#include "sim/simulator.h"

namespace {

using namespace noc;

/** One faulty run at the paper's 30% load. */
SimResult
runWith(RouterArch arch, const std::vector<FaultSpec> &faults)
{
    SimConfig cfg;
    cfg.arch = arch;
    cfg.routing = RoutingKind::XY;
    cfg.injectionRate = 0.3;
    cfg.warmupPackets = 500;
    cfg.measurePackets = 4000;
    cfg.maxCycles = 100000;
    Simulator sim(cfg, faults);
    return sim.run();
}

void
scenario(const char *name, const char *recovery, FaultComponent comp,
         Module mod)
{
    std::printf("\n%s fault at node 27 (%s module)\n", name,
                toString(mod));
    std::printf("  RoCo recovery: %s\n", recovery);
    FaultSpec f{27, comp, mod, 0, 0};
    for (RouterArch arch : {RouterArch::Generic, RouterArch::Roco}) {
        SimResult r = runWith(arch, {f});
        std::printf("  %-8s completion %.3f   latency %6.2f   PEF %7.2f\n",
                    toString(arch), r.completion, r.avgLatency, r.pef);
    }
}

} // namespace

int
main()
{
    std::puts("Hardware recycling walkthrough (Section 4): one hard "
              "fault, 8x8 mesh, XY, 30% load");
    std::puts("Baseline (no faults):");
    for (RouterArch arch : {RouterArch::Generic, RouterArch::Roco}) {
        SimResult r = runWith(arch, {});
        std::printf("  %-8s completion %.3f   latency %6.2f   PEF %7.2f\n",
                    toString(arch), r.completion, r.avgLatency, r.pef);
    }

    scenario("Routing-unit (RC)",
             "neighbours double-route (+1 cycle for heads)",
             FaultComponent::RoutingUnit, Module::Row);
    scenario("VC buffer",
             "virtual queuing retires the VC, path set absorbs traffic",
             FaultComponent::VcBuffer, Module::Row);
    scenario("Switch allocator (SA)",
             "grants ride the idle VA arbiters (1 grant/cycle max)",
             FaultComponent::SaArbiter, Module::Row);
    scenario("VC allocator (VA)",
             "none possible: the row module is isolated, the column "
             "module keeps serving",
             FaultComponent::VaArbiter, Module::Row);
    scenario("Crossbar",
             "none possible: module isolated, partial operation",
             FaultComponent::Crossbar, Module::Column);

    std::puts("\nNote how every recoverable fault leaves RoCo at "
              "completion 1.0 while the\ngeneric router loses the whole "
              "node for the identical fault.");
    return 0;
}
