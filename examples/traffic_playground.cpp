/**
 * @file
 * Traffic playground: compare the three routers on any workload the
 * library ships, from the command line.
 *
 *   ./build/examples/traffic_playground [options] [pattern] [rate] [routing]
 *   patterns: uniform transpose bitcomp hotspot tornado neighbor
 *             selfsimilar mpeg
 *   routing:  xy xyyx adaptive
 *   options:  --shards <n>   run each router on the sharded engine
 *                            (src/par); results identical to serial
 *             --threads <n>  worker budget; without --shards the runs
 *                            shard themselves up to this many ways
 *
 *   e.g. ./build/examples/traffic_playground hotspot 0.25 adaptive
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/simulator.h"

namespace {

noc::TrafficKind
parsePattern(const char *s)
{
    using enum noc::TrafficKind;
    if (!std::strcmp(s, "transpose")) return Transpose;
    if (!std::strcmp(s, "bitcomp")) return BitComplement;
    if (!std::strcmp(s, "hotspot")) return Hotspot;
    if (!std::strcmp(s, "tornado")) return Tornado;
    if (!std::strcmp(s, "neighbor")) return NearestNeighbor;
    if (!std::strcmp(s, "selfsimilar")) return SelfSimilar;
    if (!std::strcmp(s, "mpeg")) return Mpeg;
    return Uniform;
}

noc::RoutingKind
parseRouting(const char *s)
{
    using enum noc::RoutingKind;
    if (!std::strcmp(s, "xyyx")) return XYYX;
    if (!std::strcmp(s, "adaptive")) return Adaptive;
    return XY;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off --shards/--threads first; what remains are the
    // positional pattern/rate/routing arguments.
    int shards = 0;
    int threads = 0;
    const char *pos[3] = {nullptr, nullptr, nullptr};
    int nPos = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--shards") && i + 1 < argc)
            shards = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (nPos < 3)
            pos[nPos++] = argv[i];
    }
    if (shards == 0 && threads > 0 && !std::getenv("NOC_SHARDS"))
        shards = threads;

    noc::TrafficKind traffic =
        pos[0] ? parsePattern(pos[0]) : noc::TrafficKind::Uniform;
    double rate = pos[1] ? std::atof(pos[1]) : 0.2;
    noc::RoutingKind routing =
        pos[2] ? parseRouting(pos[2]) : noc::RoutingKind::XY;

    std::printf("8x8 mesh | %s traffic | %s routing | %.2f "
                "flits/node/cycle\n\n",
                toString(traffic), toString(routing), rate);
    std::printf("%-15s %9s %8s %11s %10s %9s %9s\n", "router",
                "latency", "p-sigma", "throughput", "nJ/packet",
                "row-cont", "col-cont");

    for (noc::RouterArch arch :
         {noc::RouterArch::Generic, noc::RouterArch::PathSensitive,
          noc::RouterArch::Roco}) {
        noc::SimConfig cfg;
        cfg.arch = arch;
        cfg.routing = routing;
        cfg.traffic = traffic;
        cfg.injectionRate = rate;
        cfg.shards = shards;
        cfg.warmupPackets = 800;
        cfg.measurePackets = 8000;

        noc::Simulator sim(cfg);
        noc::SimResult r = sim.run();
        std::printf("%-15s %9.2f %8.2f %11.3f %10.3f %9.3f %9.3f%s\n",
                    toString(arch), r.avgLatency, r.latencyStddev,
                    r.throughputFlits, r.energyPerPacketNj,
                    r.rowContention, r.colContention,
                    r.timedOut ? "  (saturated)" : "");
    }
    return 0;
}
