/**
 * @file
 * Traffic playground: compare the three routers on any workload the
 * library ships, from the command line.
 *
 *   ./build/examples/traffic_playground [pattern] [rate] [routing]
 *   patterns: uniform transpose bitcomp hotspot tornado neighbor
 *             selfsimilar mpeg
 *   routing:  xy xyyx adaptive
 *
 *   e.g. ./build/examples/traffic_playground hotspot 0.25 adaptive
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/simulator.h"

namespace {

noc::TrafficKind
parsePattern(const char *s)
{
    using enum noc::TrafficKind;
    if (!std::strcmp(s, "transpose")) return Transpose;
    if (!std::strcmp(s, "bitcomp")) return BitComplement;
    if (!std::strcmp(s, "hotspot")) return Hotspot;
    if (!std::strcmp(s, "tornado")) return Tornado;
    if (!std::strcmp(s, "neighbor")) return NearestNeighbor;
    if (!std::strcmp(s, "selfsimilar")) return SelfSimilar;
    if (!std::strcmp(s, "mpeg")) return Mpeg;
    return Uniform;
}

noc::RoutingKind
parseRouting(const char *s)
{
    using enum noc::RoutingKind;
    if (!std::strcmp(s, "xyyx")) return XYYX;
    if (!std::strcmp(s, "adaptive")) return Adaptive;
    return XY;
}

} // namespace

int
main(int argc, char **argv)
{
    noc::TrafficKind traffic =
        argc > 1 ? parsePattern(argv[1]) : noc::TrafficKind::Uniform;
    double rate = argc > 2 ? std::atof(argv[2]) : 0.2;
    noc::RoutingKind routing =
        argc > 3 ? parseRouting(argv[3]) : noc::RoutingKind::XY;

    std::printf("8x8 mesh | %s traffic | %s routing | %.2f "
                "flits/node/cycle\n\n",
                toString(traffic), toString(routing), rate);
    std::printf("%-15s %9s %8s %11s %10s %9s %9s\n", "router",
                "latency", "p-sigma", "throughput", "nJ/packet",
                "row-cont", "col-cont");

    for (noc::RouterArch arch :
         {noc::RouterArch::Generic, noc::RouterArch::PathSensitive,
          noc::RouterArch::Roco}) {
        noc::SimConfig cfg;
        cfg.arch = arch;
        cfg.routing = routing;
        cfg.traffic = traffic;
        cfg.injectionRate = rate;
        cfg.warmupPackets = 800;
        cfg.measurePackets = 8000;

        noc::Simulator sim(cfg);
        noc::SimResult r = sim.run();
        std::printf("%-15s %9.2f %8.2f %11.3f %10.3f %9.3f %9.3f%s\n",
                    toString(arch), r.avgLatency, r.latencyStddev,
                    r.throughputFlits, r.energyPerPacketNj,
                    r.rowContention, r.colContention,
                    r.timedOut ? "  (saturated)" : "");
    }
    return 0;
}
