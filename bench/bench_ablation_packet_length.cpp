/**
 * @file
 * Ablation: packet length. The paper fixes packets at four 128-bit
 * flits; this sweep shows how serialisation (longer wormholes) and
 * per-packet overheads (shorter ones) move the latency and the
 * energy-per-flit of each architecture.
 */
#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    printSeed();

    std::puts("Ablation: flits per packet (uniform, XY, 0.25 "
              "flits/node/cycle offered)");
    std::printf("%-8s | %10s %12s %10s | %12s %12s\n", "flits",
                "Generic", "PathSens", "RoCo", "Gen nJ/flit",
                "RoCo nJ/flit");
    hr();
    for (int len : {1, 2, 4, 8, 16}) {
        double lat[3], nj[3];
        int i = 0;
        for (RouterArch a : kArchs) {
            SimConfig cfg = paperConfig(a, RoutingKind::XY,
                                        TrafficKind::Uniform, 0.25);
            cfg.flitsPerPacket = len;
            Simulator sim(cfg);
            SimResult r = sim.run();
            lat[i] = r.avgLatency;
            nj[i] = r.energyPerPacketNj / len;
            ++i;
        }
        std::printf("%-8d | %10.2f %12.2f %10.2f | %12.4f %12.4f\n",
                    len, lat[0], lat[1], lat[2], nj[0], nj[2]);
    }
    std::puts("\nExpected: latency grows with serialisation; energy "
              "per flit falls as the\nper-packet RC/VA overhead "
              "amortises, with RoCo cheaper at every length.");
    return 0;
}
