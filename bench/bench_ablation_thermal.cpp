/**
 * @file
 * Extension (the paper's stated future work): thermal profiles of the
 * three architectures under hotspot traffic, from the lumped-RC tile
 * model fed by the simulator's activity counters.
 */
#include "bench_util.h"
#include "power/thermal.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    printSeed();

    std::puts("Extension: steady-state tile temperatures, hotspot "
              "traffic, 25% injection, XY");
    std::printf("%-16s %10s %10s %14s\n", "router", "max C", "mean C",
                "hottest tile");
    hr();
    for (RouterArch a : kArchs) {
        SimConfig cfg =
            paperConfig(a, RoutingKind::XY, TrafficKind::Hotspot, 0.25);
        Network net(cfg);
        // Fast thermal constants reach steady state within the run.
        ThermalParams p;
        p.cThetaJPerK = 1e-7;
        ThermalTracker tracker(net, p);

        Cycle now = 0;
        const Cycle window = 500;
        for (int w = 0; w < 40; ++w) {
            for (Cycle c = 0; c < window; ++c)
                net.step(now++, true, false);
            tracker.sample(window);
        }
        const ThermalModel &m = tracker.model();
        std::printf("%-16s %10.2f %10.2f %14u\n", toString(a),
                    m.maxTemperature(), m.meanTemperature(),
                    static_cast<unsigned>(m.hottestNode()));
    }
    std::puts("\nExpected: the RoCo router's lower dynamic energy per "
              "hop yields the coolest\nprofile; the hottest tiles sit "
              "in the hotspot region for every design.");
    return 0;
}
