/**
 * @file
 * Ablation: how much of the RoCo advantage comes from early ejection?
 *
 * Early ejection saves two cycles at the destination and removes
 * ejecting flits from switch allocation. We cannot toggle it without
 * changing the microarchitecture, so this ablation isolates the effect
 * with traffic whose ejection share varies: nearest-neighbour traffic
 * (1-hop packets, ejection dominates) against uniform (~5.3 hops,
 * ejection amortised). The RoCo-vs-generic latency gap must widen as
 * the ejection share grows.
 */
#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    printSeed();

    std::puts("Ablation: early-ejection contribution via ejection-heavy"
              " traffic (XY routing)");
    std::printf("%-18s %10s %10s %14s\n", "traffic", "Generic", "RoCo",
                "gap (cycles)");
    hr();
    for (TrafficKind t :
         {TrafficKind::NearestNeighbor, TrafficKind::Uniform}) {
        for (double rate : {0.1, 0.2, 0.3}) {
            SimResult g = run(RouterArch::Generic, RoutingKind::XY, t,
                              rate);
            SimResult rc = run(RouterArch::Roco, RoutingKind::XY, t,
                               rate);
            char label[40];
            std::snprintf(label, sizeof label, "%s @%.1f", toString(t),
                          rate);
            std::printf("%-18s %10.2f %10.2f %14.2f\n", label,
                        g.avgLatency, rc.avgLatency,
                        g.avgLatency - rc.avgLatency);
        }
    }
    std::puts("\nExpected: the absolute gap is largest for 1-hop "
              "nearest-neighbour packets,\nwhere the 2-cycle ejection "
              "saving is the whole journey's overhead.");
    return 0;
}
