/**
 * @file
 * Shared driver for the Figure 11/12 packet-completion sweeps: one
 * fault class, 1/2/4 random faults, all routings and architectures,
 * averaged over several fault placements.
 *
 * Fault placements are pre-generated into labelled FaultSets (one
 * grid-axis value per placement) so every (routing, arch, placement)
 * combination becomes an independent sweep point; the table averages
 * the placements per cell after the pool has run them all.
 */
#ifndef ROCOSIM_BENCH_BENCH_FAULT_SWEEP_H_
#define ROCOSIM_BENCH_BENCH_FAULT_SWEEP_H_

#include "bench_util.h"
#include "fault/fault_injector.h"

namespace noc::bench {

/** "crit-2f-s11"-style label for a random placement. */
inline std::string
faultSetLabel(const char *prefix, int nf, std::uint64_t seed)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s-%df-s%" PRIu64, prefix, nf, seed);
    return buf;
}

inline int
faultSweep(FaultClass cls, const char *figure, const char *caption,
           const char *specName)
{
    const int faultCounts[] = {1, 2, 4};
    const std::uint64_t seeds[] = {11, 22, 33};
    constexpr std::size_t kSeeds = std::size(seeds);
    MeshTopology topo(8, 8);

    exp::SweepSpec spec = makeGridSpec(specName);
    spec.base.injectionRate = 0.3;
    const char *prefix =
        cls == FaultClass::RouterCentricCritical ? "crit" : "noncrit";
    for (int nf : faultCounts) {
        for (std::uint64_t seed : seeds) {
            spec.faultSets.push_back(
                {faultSetLabel(prefix, nf, seed),
                 placeRandomFaults(topo, cls, nf, 3, seed)});
        }
    }
    exp::SweepResults res = runSweep(spec);

    std::printf("%s: packet completion probability, 30%% injection, "
                "%s faults\n", figure, caption);
    perRoutingTables(
        spec, 8, "#faults", "", std::size(faultCounts),
        [&](std::size_t ro, std::size_t nfi) {
            std::printf("%-8d", faultCounts[nfi]);
            for (std::size_t ar = 0; ar < spec.archs.size(); ++ar) {
                double sum = 0;
                for (std::size_t s = 0; s < kSeeds; ++s) {
                    sum += res.at(spec, ro, 0, 0, nfi * kSeeds + s, ar)
                               .completion;
                }
                std::printf(" %10.3f", sum / static_cast<double>(kSeeds));
            }
            std::puts("");
        });
    return 0;
}

} // namespace noc::bench

#endif // ROCOSIM_BENCH_BENCH_FAULT_SWEEP_H_
