/**
 * @file
 * Shared driver for the Figure 11/12 packet-completion sweeps: one
 * fault class, 1/2/4 random faults, all routings and architectures,
 * averaged over several fault placements.
 */
#ifndef ROCOSIM_BENCH_BENCH_FAULT_SWEEP_H_
#define ROCOSIM_BENCH_BENCH_FAULT_SWEEP_H_

#include "bench_util.h"
#include "fault/fault_injector.h"

namespace noc::bench {

inline int
faultSweep(FaultClass cls, const char *figure, const char *caption)
{
    const int faultCounts[] = {1, 2, 4};
    const std::uint64_t seeds[] = {11, 22, 33};
    MeshTopology topo(8, 8);

    std::printf("%s: packet completion probability, 30%% injection, "
                "%s faults\n", figure, caption);
    for (RoutingKind routing : kRoutings) {
        std::printf("\n-- %s routing --\n", toString(routing));
        std::printf("%-8s %10s %12s %10s\n", "#faults", "Generic",
                    "PathSens", "RoCo");
        hr();
        for (int nf : faultCounts) {
            std::printf("%-8d", nf);
            for (RouterArch a : kArchs) {
                double sum = 0;
                for (std::uint64_t seed : seeds) {
                    auto faults =
                        placeRandomFaults(topo, cls, nf, 3, seed);
                    sum += run(a, routing, TrafficKind::Uniform, 0.3,
                               faults)
                               .completion;
                }
                std::printf(" %10.3f",
                            sum / static_cast<double>(std::size(seeds)));
            }
            std::puts("");
        }
    }
    return 0;
}

} // namespace noc::bench

#endif // ROCOSIM_BENCH_BENCH_FAULT_SWEEP_H_
