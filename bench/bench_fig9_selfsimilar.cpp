/** @file Figure 9: latency under self-similar (Pareto ON/OFF) traffic. */
#include "bench_latency_sweep.h"

int
main()
{
    return noc::bench::latencySweep(noc::TrafficKind::SelfSimilar,
                                    "Figure 9", "fig9_selfsimilar");
}
