/**
 * @file
 * Figure 13: energy per packet (nJ) at 30% injection for uniform,
 * self-similar and transpose traffic. Expected: RoCo about 20% below
 * the generic router and about 6% below the Path-Sensitive router.
 */
#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    const TrafficKind kinds[] = {TrafficKind::Uniform,
                                 TrafficKind::SelfSimilar,
                                 TrafficKind::Transpose};

    std::puts("Figure 13: energy per packet (nJ), 30% injection, XY "
              "routing");
    std::printf("%-14s %10s %12s %10s %18s\n", "traffic", "Generic",
                "PathSens", "RoCo", "RoCo vs Gen/PS");
    hr();
    for (TrafficKind t : kinds) {
        double e[3];
        int i = 0;
        for (RouterArch a : kArchs)
            e[i++] = run(a, RoutingKind::XY, t, 0.3).energyPerPacketNj;
        std::printf("%-14s %10.3f %12.3f %10.3f    -%4.1f%% / -%4.1f%%\n",
                    toString(t), e[0], e[1], e[2],
                    100.0 * (1.0 - e[2] / e[0]),
                    100.0 * (1.0 - e[2] / e[1]));
    }
    std::puts("\nPaper: ~20% lower than generic, ~6% lower than "
              "Path-Sensitive.");
    return 0;
}
