/**
 * @file
 * Figure 13: energy per packet (nJ) at 30% injection for uniform,
 * self-similar and transpose traffic. Expected: RoCo about 20% below
 * the generic router and about 6% below the Path-Sensitive router.
 */
#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    exp::SweepSpec spec = makeSpec("fig13_energy");
    spec.base.injectionRate = 0.3;
    spec.archs = {std::begin(kArchs), std::end(kArchs)};
    spec.traffics = {TrafficKind::Uniform, TrafficKind::SelfSimilar,
                     TrafficKind::Transpose};
    exp::SweepResults res = runSweep(spec);

    std::puts("Figure 13: energy per packet (nJ), 30% injection, XY "
              "routing");
    std::printf("%-14s %10s %12s %10s %18s\n", "traffic", "Generic",
                "PathSens", "RoCo", "RoCo vs Gen/PS");
    hr();
    for (std::size_t tr = 0; tr < spec.traffics.size(); ++tr) {
        double e[3];
        for (std::size_t ar = 0; ar < spec.archs.size(); ++ar)
            e[ar] = res.at(spec, 0, tr, 0, 0, ar).energyPerPacketNj;
        std::printf("%-14s %10.3f %12.3f %10.3f    -%4.1f%% / -%4.1f%%\n",
                    toString(spec.traffics[tr]), e[0], e[1], e[2],
                    100.0 * (1.0 - e[2] / e[0]),
                    100.0 * (1.0 - e[2] / e[1]));
    }
    std::puts("\nPaper: ~20% lower than generic, ~6% lower than "
              "Path-Sensitive.");
    return 0;
}
