/** @file Figure 8: latency under uniform random traffic. */
#include "bench_latency_sweep.h"

int
main()
{
    return noc::bench::latencySweep(noc::TrafficKind::Uniform,
                                    "Figure 8", "fig8_uniform");
}
