/**
 * @file
 * Figure 11: completion probability under router-centric /
 * critical-pathway faults (VA, SA, crossbar, mux/demux). These take a
 * whole generic/Path-Sensitive node off-line; RoCo degrades to a
 * single module and keeps serving the other dimension.
 */
#include "bench_fault_sweep.h"

int
main()
{
    return noc::bench::faultSweep(
        noc::FaultClass::RouterCentricCritical, "Figure 11",
        "router-centric / critical-pathway",
        "fig11_critical_faults");
}
