/**
 * @file
 * Figure 12: completion probability under message-centric /
 * non-critical faults (RC unit, VC buffers). RoCo's hardware
 * recycling (double routing, virtual queuing) keeps completion near
 * 1.0; the unified designs still lose the whole node.
 */
#include "bench_fault_sweep.h"

int
main()
{
    return noc::bench::faultSweep(
        noc::FaultClass::MessageCentricNonCritical, "Figure 12",
        "message-centric / non-critical",
        "fig12_noncritical_faults");
}
