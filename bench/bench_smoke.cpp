/**
 * @file
 * Smoke test for the parallel sweep machinery, small enough to run
 * under ThreadSanitizer in CI (registered as the `bench_smoke` ctest).
 *
 * Forces a multi-thread pool regardless of host core count so the
 * runner's sharing (atomic work counter, per-slot result writes, the
 * locked observability aggregate) is actually exercised, then
 * cross-checks the pool's results against a serial run. Also guards
 * the observability contracts: an attached recorder must not perturb
 * simulation results, the trace aggregate must be pool-size
 * independent, and the untraced hot path must not pay for the obs
 * subsystem's existence. Exits non-zero on any violation.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "obs/obs.h"
#include "obs/recorder.h"

namespace {

using namespace noc;
using namespace noc::bench;

exp::SweepSpec
smokeSpec()
{
    exp::SweepSpec spec = makeSpec("smoke");
    spec.base.meshWidth = 4;
    spec.base.meshHeight = 4;
    spec.base.warmupPackets = 20;
    spec.base.measurePackets = 150;
    spec.base.maxCycles = 20000;
    spec.archs = {std::begin(kArchs), std::end(kArchs)};
    spec.rates = {0.1, 0.2};
    return spec;
}

int
comparePools(const exp::SweepResults &serial, const exp::SweepResults &pooled)
{
    int bad = 0;
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        const SimResult &a = serial.results[i].result;
        const SimResult &b = pooled.results[i].result;
        if (a.avgLatency != b.avgLatency || a.cycles != b.cycles ||
            a.delivered != b.delivered ||
            a.energyPerPacketNj != b.energyPerPacketNj) {
            std::fprintf(stderr, "point %zu diverged across pools\n", i);
            ++bad;
        }
    }
    return bad;
}

/** The sweep above, traced: the merged aggregate must be identical for
 *  a serial and a pooled run (Summary::merge is commutative), and in
 *  builds without the compiled-in hooks it must not form at all. */
int
checkObsAggregate()
{
    setenv("NOC_TRACE", "1", 1);
    exp::SweepSpec spec = smokeSpec();
    exp::SweepResults serial = exp::SweepRunner(1).run(spec);
    exp::SweepResults pooled = exp::SweepRunner(4).run(spec);
    unsetenv("NOC_TRACE");

    if (!obs::kBuiltIn) {
        if (serial.obs || pooled.obs) {
            std::fprintf(stderr, "obs aggregate formed without hooks\n");
            return 1;
        }
        return 0;
    }
    if (!serial.obs || !pooled.obs) {
        std::fprintf(stderr, "traced sweep produced no obs aggregate\n");
        return 1;
    }
    int bad = 0;
    for (int st = 0; st < obs::kStageCount; ++st) {
        if (serial.obs->counters.events[st] !=
                pooled.obs->counters.events[st] ||
            serial.obs->residency[st].count() !=
                pooled.obs->residency[st].count()) {
            std::fprintf(stderr, "obs aggregate diverged at stage %d\n", st);
            ++bad;
        }
    }
    if (serial.obs->endToEnd.count() != pooled.obs->endToEnd.count() ||
        serial.obs->endToEnd.percentile(0.99) !=
            pooled.obs->endToEnd.percentile(0.99)) {
        std::fprintf(stderr, "obs end-to-end histogram diverged\n");
        ++bad;
    }
    return bad;
}

/** One timed run; a disabled recorder is attached when @p disabled. */
double
timedRun(const SimConfig &cfg, bool disabledRecorder)
{
    Simulator sim(cfg);
    if (disabledRecorder) {
        obs::Recorder::Options opt;
        opt.nodes = cfg.meshWidth * cfg.meshHeight;
        opt.meshWidth = cfg.meshWidth;
        opt.meshHeight = cfg.meshHeight;
        opt.arch = cfg.arch;
        opt.enabled = false;
        sim.attachObserver(std::make_shared<obs::Recorder>(opt));
    }
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Overhead guard for the untraced hot path: min-of-3 wall time with a
 * disabled recorder attached vs without one. In NOC_OBS=OFF builds the
 * hooks are compiled out, so both paths run the same code and only
 * timer noise separates them; in NOC_OBS=ON builds the disabled
 * recorder costs one branch per hook. Either way a blow-up beyond the
 * generous noise bound means the hot path regressed.
 */
int
checkDisabledOverhead()
{
    SimConfig cfg = paperConfig(RouterArch::Roco, RoutingKind::XY,
                                TrafficKind::Uniform, 0.15);
    cfg.warmupPackets = 100;
    cfg.measurePackets = 1500;
    double plain = 1e300, withRec = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        plain = std::min(plain, timedRun(cfg, false));
        withRec = std::min(withRec, timedRun(cfg, true));
    }
    double ratio = withRec / plain;
    std::printf("bench_smoke: untraced hot path x%.2f with idle recorder "
                "(%.1f ms vs %.1f ms, NOC_OBS %s)\n",
                ratio, withRec, plain, obs::kBuiltIn ? "ON" : "OFF");
    if (ratio > 1.75) {
        std::fprintf(stderr, "idle-recorder overhead beyond noise\n");
        return 1;
    }
    return 0;
}

/** An attached (enabled) recorder must not change simulation results. */
int
checkRecorderInert()
{
    SimConfig cfg = paperConfig(RouterArch::Roco, RoutingKind::XY,
                                TrafficKind::Uniform, 0.15);
    cfg.warmupPackets = 50;
    cfg.measurePackets = 400;
    Simulator plain(cfg);
    SimResult a = plain.run();

    Simulator traced(cfg);
    obs::Recorder::Options opt;
    opt.nodes = cfg.meshWidth * cfg.meshHeight;
    opt.meshWidth = cfg.meshWidth;
    opt.meshHeight = cfg.meshHeight;
    opt.arch = cfg.arch;
    auto rec = std::make_shared<obs::Recorder>(opt);
    traced.attachObserver(rec);
    SimResult b = traced.run();

    if (a.avgLatency != b.avgLatency || a.cycles != b.cycles ||
        a.delivered != b.delivered ||
        a.energyPerPacketNj != b.energyPerPacketNj) {
        std::fprintf(stderr, "recorder perturbed simulation results\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main()
{
    exp::SweepSpec spec = smokeSpec();
    exp::SweepResults serial = exp::SweepRunner(1).run(spec);
    exp::SweepResults pooled = exp::SweepRunner(4).run(spec);

    int bad = comparePools(serial, pooled);
    bad += checkObsAggregate();
    bad += checkRecorderInert();
    bad += checkDisabledOverhead();

    std::printf("bench_smoke: %zu points, %d threads, %s\n",
                pooled.results.size(), pooled.threads,
                bad ? "MISMATCH" : "serial == pooled");
    return bad ? 1 : 0;
}
