/**
 * @file
 * Smoke test for the parallel sweep machinery, small enough to run
 * under ThreadSanitizer in CI (registered as the `bench_smoke` ctest).
 *
 * Forces a multi-thread pool regardless of host core count so the
 * runner's sharing (atomic work counter, per-slot result writes, the
 * locked observability aggregate) is actually exercised, then
 * cross-checks the pool's results against a serial run. Also guards
 * the observability contracts: an attached recorder must not perturb
 * simulation results, the trace aggregate must be pool-size
 * independent, and the untraced hot path must not pay for the obs
 * subsystem's existence. Exits non-zero on any violation.
 *
 * The sharded engine (src/par) gets the same treatment: every
 * architecture x routing (plus a critical-fault row) is run serial and
 * at 2 and 4 shards and must match bit-for-bit — results, flit ledger
 * and (in NOC_OBS builds) the trace summary. A 16x16 speedup probe
 * then records the serial-vs-4-shard wall-clock ratio in
 * BENCH_smoke_shards.json; the ratio is informational (flat on
 * single-core or sanitizer hosts), only divergence fails the bench.
 *
 * Finally the multi-process farm (src/farm) gets its equivalence gate:
 * the same smoke grid, run by 2 forked farm workers through a fresh
 * journal, must aggregate to the exact bytes of the in-process
 * schema-4 canonical serialisation (recorded as
 * BENCH_smoke_farm.json). Skipped under ThreadSanitizer, which does
 * not support fork-heavy code.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <dirent.h>
#include <unistd.h>

#include "bench_util.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"
#include "obs/recorder.h"

#if defined(__SANITIZE_THREAD__)
#define SMOKE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SMOKE_TSAN 1
#endif
#endif
#ifndef SMOKE_TSAN
#define SMOKE_TSAN 0
#endif

namespace {

using namespace noc;
using namespace noc::bench;

exp::SweepSpec
smokeSpec()
{
    exp::SweepSpec spec = makeSpec("smoke");
    spec.base.meshWidth = 4;
    spec.base.meshHeight = 4;
    spec.base.warmupPackets = 20;
    spec.base.measurePackets = 150;
    spec.base.maxCycles = 20000;
    spec.archs = {std::begin(kArchs), std::end(kArchs)};
    spec.rates = {0.1, 0.2};
    return spec;
}

int
comparePools(const exp::SweepResults &serial, const exp::SweepResults &pooled)
{
    int bad = 0;
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        const SimResult &a = serial.results[i].result;
        const SimResult &b = pooled.results[i].result;
        if (a.avgLatency != b.avgLatency || a.cycles != b.cycles ||
            a.delivered != b.delivered ||
            a.energyPerPacketNj != b.energyPerPacketNj) {
            std::fprintf(stderr, "point %zu diverged across pools\n", i);
            ++bad;
        }
    }
    return bad;
}

/** The sweep above, traced: the merged aggregate must be identical for
 *  a serial and a pooled run (Summary::merge is commutative), and in
 *  builds without the compiled-in hooks it must not form at all. */
int
checkObsAggregate()
{
    setenv("NOC_TRACE", "1", 1);
    exp::SweepSpec spec = smokeSpec();
    exp::SweepResults serial = exp::SweepRunner(1).run(spec);
    exp::SweepResults pooled = exp::SweepRunner(4).run(spec);
    unsetenv("NOC_TRACE");

    if (!obs::kBuiltIn) {
        if (serial.obs || pooled.obs) {
            std::fprintf(stderr, "obs aggregate formed without hooks\n");
            return 1;
        }
        return 0;
    }
    if (!serial.obs || !pooled.obs) {
        std::fprintf(stderr, "traced sweep produced no obs aggregate\n");
        return 1;
    }
    int bad = 0;
    for (int st = 0; st < obs::kStageCount; ++st) {
        if (serial.obs->counters.events[st] !=
                pooled.obs->counters.events[st] ||
            serial.obs->residency[st].count() !=
                pooled.obs->residency[st].count()) {
            std::fprintf(stderr, "obs aggregate diverged at stage %d\n", st);
            ++bad;
        }
    }
    if (serial.obs->endToEnd.count() != pooled.obs->endToEnd.count() ||
        serial.obs->endToEnd.percentile(0.99) !=
            pooled.obs->endToEnd.percentile(0.99)) {
        std::fprintf(stderr, "obs end-to-end histogram diverged\n");
        ++bad;
    }
    return bad;
}

/** One timed run; a disabled recorder is attached when @p disabled. */
double
timedRun(const SimConfig &cfg, bool disabledRecorder)
{
    Simulator sim(cfg);
    if (disabledRecorder) {
        obs::Recorder::Options opt;
        opt.nodes = cfg.meshWidth * cfg.meshHeight;
        opt.meshWidth = cfg.meshWidth;
        opt.meshHeight = cfg.meshHeight;
        opt.arch = cfg.arch;
        opt.enabled = false;
        sim.attachObserver(std::make_shared<obs::Recorder>(opt));
    }
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Overhead guard for the untraced hot path: min-of-3 wall time with a
 * disabled recorder attached vs without one. In NOC_OBS=OFF builds the
 * hooks are compiled out, so both paths run the same code and only
 * timer noise separates them; in NOC_OBS=ON builds the disabled
 * recorder costs one branch per hook. Either way a blow-up beyond the
 * generous noise bound means the hot path regressed.
 */
int
checkDisabledOverhead()
{
    SimConfig cfg = paperConfig(RouterArch::Roco, RoutingKind::XY,
                                TrafficKind::Uniform, 0.15);
    cfg.warmupPackets = 100;
    cfg.measurePackets = 1500;
    double plain = 1e300, withRec = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        plain = std::min(plain, timedRun(cfg, false));
        withRec = std::min(withRec, timedRun(cfg, true));
    }
    double ratio = withRec / plain;
    std::printf("bench_smoke: untraced hot path x%.2f with idle recorder "
                "(%.1f ms vs %.1f ms, NOC_OBS %s)\n",
                ratio, withRec, plain, obs::kBuiltIn ? "ON" : "OFF");
    if (ratio > 1.75) {
        std::fprintf(stderr, "idle-recorder overhead beyond noise\n");
        return 1;
    }
    return 0;
}

/** One shard-equivalence observation: results + ledger + obs summary. */
struct ShardRun {
    SimResult r;
    FlitLedger ledger;
    std::uint64_t e2eCount = 0, e2eMeasured = 0, sampled = 0;
};

ShardRun
shardRun(SimConfig cfg, const std::vector<FaultSpec> &faults, int shards)
{
    cfg.shards = shards;
    Simulator sim(cfg, faults);
    std::shared_ptr<obs::Recorder> rec;
    if (obs::kBuiltIn) {
        obs::Recorder::Options opt;
        opt.nodes = cfg.meshWidth * cfg.meshHeight;
        opt.meshWidth = cfg.meshWidth;
        opt.meshHeight = cfg.meshHeight;
        opt.arch = cfg.arch;
        rec = std::make_shared<obs::Recorder>(opt);
        sim.attachObserver(rec);
    }
    ShardRun out;
    out.r = sim.run();
    out.ledger = sim.network().ledger();
    if (rec) {
        obs::Summary s = rec->summary();
        out.e2eCount = s.endToEnd.count();
        out.e2eMeasured = s.endToEndMeasured.count();
        out.sampled = s.counters.sampledPackets;
    }
    return out;
}

bool
shardRunsIdentical(const ShardRun &a, const ShardRun &b)
{
    // Per-class packet counts are part of the identity gate: open-loop
    // traffic books everything under class 0, service runs spread
    // across all four, and either way a shard mis-binning a flit's
    // class must fail the bench even when the aggregates still match.
    for (int c = 0; c < kNumMsgClasses; ++c) {
        if (a.ledger.createdByClass[c] != b.ledger.createdByClass[c] ||
            a.ledger.retiredByClass[c] != b.ledger.retiredByClass[c])
            return false;
    }
    return a.r.avgLatency == b.r.avgLatency &&
           a.r.maxLatency == b.r.maxLatency &&
           a.r.p99Latency == b.r.p99Latency &&
           a.r.throughputFlits == b.r.throughputFlits &&
           a.r.injected == b.r.injected &&
           a.r.delivered == b.r.delivered &&
           a.r.completion == b.r.completion &&
           a.r.energyPerPacketNj == b.r.energyPerPacketNj &&
           a.r.cycles == b.r.cycles && a.r.timedOut == b.r.timedOut &&
           a.ledger.created == b.ledger.created &&
           a.ledger.retired == b.ledger.retired &&
           a.ledger.lastDelivery == b.ledger.lastDelivery &&
           a.ledger.flitCycles == b.ledger.flitCycles &&
           a.e2eCount == b.e2eCount && a.e2eMeasured == b.e2eMeasured &&
           a.sampled == b.sampled;
}

/**
 * Sharded execution must be bit-identical to serial for every router
 * architecture and routing algorithm, with and without faults — the
 * engine's whole contract. 6x6 keeps ShardPlan splits non-trivial at
 * 4 shards while the matrix stays tsan-sized.
 */
int
checkShardEquivalence()
{
    MeshTopology topo(6, 6);
    std::vector<FaultSpec> critFaults = placeRandomFaults(
        topo, FaultClass::RouterCentricCritical, 2, 3, 11);

    int bad = 0;
    int combos = 0;
    for (RouterArch arch : kArchs) {
        for (RoutingKind routing : kRoutings) {
            SimConfig cfg = paperConfig(arch, routing,
                                        TrafficKind::Uniform, 0.2);
            cfg.meshWidth = 6;
            cfg.meshHeight = 6;
            cfg.warmupPackets = 20;
            cfg.measurePackets = 120;
            cfg.maxCycles = 20000;
            // Fault rows only on adaptive: faulted minimal routings
            // drain through the inactivity window, which is the slow
            // path this smoke bench cannot afford per-combination (the
            // shard_test gtest covers the full matrix).
            const bool withFaults = routing == RoutingKind::Adaptive;
            for (int f = 0; f < (withFaults ? 2 : 1); ++f) {
                const std::vector<FaultSpec> &faults =
                    f ? critFaults : std::vector<FaultSpec>{};
                ShardRun serial = shardRun(cfg, faults, 1);
                for (int shards : {2, 4}) {
                    if (!shardRunsIdentical(serial,
                                            shardRun(cfg, faults, shards))) {
                        std::fprintf(stderr,
                                     "shard divergence: %s/%s %s at %d "
                                     "shards\n",
                                     toString(arch), toString(routing),
                                     f ? "2-crit-faults" : "fault-free",
                                     shards);
                        ++bad;
                    }
                }
                ++combos;
            }
        }
    }
    std::printf("bench_smoke: %d shard-equivalence combos x {2,4} shards "
                "vs serial, %s\n", combos, bad ? "DIVERGED" : "identical");
    return bad;
}

/**
 * Wall-clock scaling probe: 16x16 uniform RoCo, serial vs 4 shards,
 * recorded in BENCH_smoke_shards.json. Purely informational — hosts
 * with fewer free cores than shards (CI runners, this container, any
 * sanitizer build) legitimately show ~1x, so only result divergence
 * fails; speedup is for machines with cores to spend.
 */
int
checkShardSpeedup()
{
    SimConfig cfg = paperConfig(RouterArch::Roco, RoutingKind::XY,
                                TrafficKind::Uniform, 0.2);
    cfg.meshWidth = 16;
    cfg.meshHeight = 16;
    cfg.warmupPackets = SMOKE_TSAN ? 50 : 200;
    cfg.measurePackets = SMOKE_TSAN ? 300 : 2000;

    double serialMs = 1e300, shardedMs = 1e300;
    SimResult serialR, shardedR;
    for (int rep = 0; rep < 2; ++rep) {
        SimConfig c = cfg;
        c.shards = 1;
        Simulator s1(c);
        auto t0 = std::chrono::steady_clock::now();
        SimResult r1 = s1.run();
        serialMs = std::min(
            serialMs, std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        serialR = r1;

        c.shards = 4;
        Simulator s4(c);
        t0 = std::chrono::steady_clock::now();
        SimResult r4 = s4.run();
        shardedMs = std::min(
            shardedMs, std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
        shardedR = r4;
    }
    bool same = serialR.avgLatency == shardedR.avgLatency &&
                serialR.delivered == shardedR.delivered &&
                serialR.cycles == shardedR.cycles &&
                serialR.energyPerPacketNj == shardedR.energyPerPacketNj;
    double speedup = serialMs / shardedMs;
    unsigned hw = std::thread::hardware_concurrency();
    std::printf("bench_smoke: 16x16 speedup at 4 shards: %.2fx "
                "(%.1f ms -> %.1f ms, %u hw threads)%s\n",
                speedup, serialMs, shardedMs, hw,
                same ? "" : "  DIVERGED");

    char json[256];
    std::snprintf(json, sizeof json,
                  "{\"schema\": 1, \"bench\": \"smoke_shards\", "
                  "\"mesh\": 16, \"shards\": 4, \"serialMs\": %.3f, "
                  "\"shardedMs\": %.3f, \"speedup\": %.4f, "
                  "\"identical\": %s, \"hwThreads\": %u}\n",
                  serialMs, shardedMs, speedup, same ? "true" : "false",
                  hw);
    exp::writeBenchJson("smoke_shards", json);
    return same ? 0 : 1;
}

/**
 * Throughput-regression canary for the serial hot path: min-of-3 wall
 * time of an 8x8 RoCo probe with idle-skip on vs off, recorded in
 * BENCH_smoke_throughput.json.  Two gates: the two runs must produce
 * bit-identical results (idle-skip is provably a no-op), and the
 * skipping engine must not come out grossly slower than the plain loop
 * — a generous 1.5x bound so timer noise and sanitizer builds never
 * trip it, while a real hot-path regression (idle-skip bookkeeping
 * outweighing the work it skips) still does.  Absolute wall times and
 * flit-cycles/second are informational; bench_throughput owns the
 * speedup-vs-baseline comparison.
 */
int
checkThroughputRegression()
{
    SimConfig cfg = paperConfig(RouterArch::Roco, RoutingKind::XY,
                                TrafficKind::Uniform, 0.1);
    cfg.warmupPackets = SMOKE_TSAN ? 50 : 200;
    cfg.measurePackets = SMOKE_TSAN ? 400 : 4000;

    double onMs = 1e300, offMs = 1e300;
    SimResult onR{}, offR{};
    std::uint64_t flitCycles = 0;
    for (int rep = 0; rep < 3; ++rep) {
        SimConfig c = cfg;
        c.idleSkip = true;
        Simulator sOn(c);
        auto t0 = std::chrono::steady_clock::now();
        onR = sOn.run();
        onMs = std::min(onMs, std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
        flitCycles = sOn.network().ledger().flitCycles;

        c.idleSkip = false;
        Simulator sOff(c);
        t0 = std::chrono::steady_clock::now();
        offR = sOff.run();
        offMs = std::min(offMs,
                         std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
    }

    int bad = 0;
    if (onR.avgLatency != offR.avgLatency || onR.cycles != offR.cycles ||
        onR.delivered != offR.delivered ||
        onR.energyPerPacketNj != offR.energyPerPacketNj) {
        std::fprintf(stderr, "idle-skip on/off results diverged\n");
        ++bad;
    }
    const double ratio = onMs / offMs;
    const double flitCycPerSec =
        onMs > 0 ? static_cast<double>(flitCycles) / (onMs / 1000.0) : 0;
    std::printf("bench_smoke: idle-skip on %.1f ms vs off %.1f ms "
                "(x%.2f), %.3g flit-cycles/s\n",
                onMs, offMs, ratio, flitCycPerSec);
    if (ratio > 1.5) {
        std::fprintf(stderr, "idle-skip slower than the plain loop "
                             "beyond noise\n");
        ++bad;
    }

    char json[320];
    std::snprintf(json, sizeof json,
                  "{\"schema\": 1, \"bench\": \"smoke_throughput\", "
                  "\"mesh\": 8, \"idleSkipMs\": %.3f, \"noSkipMs\": %.3f, "
                  "\"ratio\": %.4f, \"flitCycles\": %" PRIu64 ", "
                  "\"flitCyclesPerSec\": %.1f, \"identical\": %s}\n",
                  onMs, offMs, ratio, flitCycles, flitCycPerSec,
                  bad ? "false" : "true");
    exp::writeBenchJson("smoke_throughput", json);
    return bad;
}

/** Unlinks every regular file in @p d, then the directory itself. */
void
removeFlatDir(const std::string &d)
{
    if (DIR *dp = ::opendir(d.c_str())) {
        while (dirent *e = ::readdir(dp)) {
            std::string n = e->d_name;
            if (n != "." && n != "..")
                ::unlink((d + "/" + n).c_str());
        }
        ::closedir(dp);
    }
    ::rmdir(d.c_str());
}

/**
 * Multi-process equivalence gate: the smoke grid, executed by 2 forked
 * farm workers against a fresh journal, must aggregate to the exact
 * bytes the in-process serialiser produces for the same results under
 * the same schema-4 canonical options. @p serial is the pool-of-one
 * run from main — per-point results are bit-identical by the sweep
 * contract, so it doubles as the expected farm output. Skipped under
 * tsan (the farm forks; tsan does not follow children).
 */
int
checkFarmEquivalence(const exp::SweepResults &serial)
{
#if SMOKE_TSAN
    (void)serial;
    std::puts("bench_smoke: farm equivalence skipped under tsan "
              "(forking workers)");
    return 0;
#else
    exp::SweepSpec spec = smokeSpec();
    spec.name = "smoke_farm";

    // A fresh journal every run: a stale one from an older build could
    // carry a different spec fingerprint and fail the open.
    const std::string dir = "smoke_farm_journal";
    removeFlatDir(dir + "/leases");
    removeFlatDir(dir + "/shards");
    removeFlatDir(dir);

    farm::FarmOptions fopts;
    fopts.dir = dir;
    fopts.workers = 2;
    farm::FarmRun fr = farm::runFarm(spec, fopts);
    if (!fr.complete) {
        std::fprintf(stderr, "farm smoke incomplete: %s\n",
                     fr.error.c_str());
        return 1;
    }

    std::string farmBytes;
    if (std::FILE *f = std::fopen(fr.jsonPath.c_str(), "rb")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            farmBytes.append(buf, n);
        std::fclose(f);
    }

    exp::JsonOptions opts;
    opts.schema = 4;
    opts.canonical = true;
    std::vector<std::string> ids = farm::jobIds(serial.points);
    opts.jobIds = &ids;
    std::string expected = exp::sweepJson(spec, serial, opts);

    if (farmBytes != expected) {
        std::size_t at = 0;
        while (at < farmBytes.size() && at < expected.size() &&
               farmBytes[at] == expected[at])
            ++at;
        std::fprintf(stderr,
                     "farm json diverged from in-process bytes at "
                     "offset %zu (%zu vs %zu bytes)\n",
                     at, farmBytes.size(), expected.size());
        return 1;
    }
    std::printf("bench_smoke: farm (2 workers) == in-process, %zu jobs, "
                "%zu bytes identical\n", fr.jobs, farmBytes.size());
    exp::writeBenchJson("smoke_farm", farmBytes);
    return 0;
#endif
}

/** An attached (enabled) recorder must not change simulation results. */
int
checkRecorderInert()
{
    SimConfig cfg = paperConfig(RouterArch::Roco, RoutingKind::XY,
                                TrafficKind::Uniform, 0.15);
    cfg.warmupPackets = 50;
    cfg.measurePackets = 400;
    Simulator plain(cfg);
    SimResult a = plain.run();

    Simulator traced(cfg);
    obs::Recorder::Options opt;
    opt.nodes = cfg.meshWidth * cfg.meshHeight;
    opt.meshWidth = cfg.meshWidth;
    opt.meshHeight = cfg.meshHeight;
    opt.arch = cfg.arch;
    auto rec = std::make_shared<obs::Recorder>(opt);
    traced.attachObserver(rec);
    SimResult b = traced.run();

    if (a.avgLatency != b.avgLatency || a.cycles != b.cycles ||
        a.delivered != b.delivered ||
        a.energyPerPacketNj != b.energyPerPacketNj) {
        std::fprintf(stderr, "recorder perturbed simulation results\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main()
{
    exp::SweepSpec spec = smokeSpec();
    exp::SweepResults serial = exp::SweepRunner(1).run(spec);
    exp::SweepResults pooled = exp::SweepRunner(4).run(spec);

    int bad = comparePools(serial, pooled);
    bad += checkObsAggregate();
    bad += checkRecorderInert();
    bad += checkDisabledOverhead();
    bad += checkThroughputRegression();
    bad += checkShardEquivalence();
    bad += checkShardSpeedup();
    bad += checkFarmEquivalence(serial);

    std::printf("bench_smoke: %zu points, %d threads, %s\n",
                pooled.results.size(), pooled.threads,
                bad ? "MISMATCH" : "serial == pooled");
    return bad ? 1 : 0;
}
