/**
 * @file
 * Smoke test for the parallel sweep machinery, small enough to run
 * under ThreadSanitizer in CI (registered as the `bench_smoke` ctest).
 *
 * Forces a multi-thread pool regardless of host core count so the
 * runner's sharing (atomic work counter, per-slot result writes) is
 * actually exercised, then cross-checks the pool's results against a
 * serial run. Exits non-zero on any mismatch.
 */
#include <cstdio>

#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    exp::SweepSpec spec = makeSpec("smoke");
    spec.base.meshWidth = 4;
    spec.base.meshHeight = 4;
    spec.base.warmupPackets = 20;
    spec.base.measurePackets = 150;
    spec.base.maxCycles = 20000;
    spec.archs = {std::begin(kArchs), std::end(kArchs)};
    spec.rates = {0.1, 0.2};

    exp::SweepResults serial = exp::SweepRunner(1).run(spec);
    exp::SweepResults pooled = exp::SweepRunner(4).run(spec);

    int bad = 0;
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        const SimResult &a = serial.results[i].result;
        const SimResult &b = pooled.results[i].result;
        if (a.avgLatency != b.avgLatency || a.cycles != b.cycles ||
            a.delivered != b.delivered ||
            a.energyPerPacketNj != b.energyPerPacketNj) {
            std::fprintf(stderr, "point %zu diverged across pools\n", i);
            ++bad;
        }
    }
    std::printf("bench_smoke: %zu points, %d threads, %s\n",
                pooled.results.size(), pooled.threads,
                bad ? "MISMATCH" : "serial == pooled");
    return bad ? 1 : 0;
}
