/**
 * @file
 * Service-mode smoke bench (registered as the `bench_svc_smoke` ctest
 * and run by CI's service job).
 *
 * Exercises the closed-loop request/reply service end to end on every
 * architecture x routing combination, fault-free and under Table-3
 * critical faults, and holds it to the same contracts the open-loop
 * benches enforce:
 *
 *  - serial vs {2, 4}-shard runs bit-identical, including the
 *    per-class latency/RTT accounting and the per-class flit ledger;
 *  - per-class flit conservation at drain (created == retired per
 *    class fault-free; never over-retired under faults) and no
 *    outstanding reply obligations;
 *  - the saturation auto-search returns identical knees for any
 *    SweepRunner pool size.
 *
 * Emits BENCH_svc_smoke.json (knees + per-combo identity verdicts)
 * unless NOC_BENCH_JSON=0.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/saturation.h"
#include "fault/fault_injector.h"
#include "svc/protocol.h"

namespace {

using namespace noc;
using namespace noc::bench;

SimConfig
svcConfig(RouterArch arch, RoutingKind routing)
{
    SimConfig cfg = paperConfig(arch, routing, TrafficKind::Uniform, 0.1);
    cfg.meshWidth = 6;
    cfg.meshHeight = 6;
    cfg.warmupPackets = 20;
    cfg.measurePackets = 150;
    cfg.maxCycles = 40000;
    cfg.svc.enabled = true;
    return cfg;
}

struct SvcRun {
    SimResult r;
    FlitLedger ledger;
};

SvcRun
svcRun(SimConfig cfg, const std::vector<FaultSpec> &faults, int shards)
{
    cfg.shards = shards;
    Simulator sim(cfg, faults);
    SvcRun out;
    out.r = sim.run();
    out.ledger = sim.network().ledger();
    return out;
}

bool
identical(const SvcRun &a, const SvcRun &b)
{
    if (a.r.avgLatency != b.r.avgLatency || a.r.cycles != b.r.cycles ||
        a.r.injected != b.r.injected || a.r.delivered != b.r.delivered ||
        a.r.drainCycles != b.r.drainCycles ||
        a.r.replyCount != b.r.replyCount ||
        a.r.mshrThrottled != b.r.mshrThrottled ||
        a.r.svcTimeouts != b.r.svcTimeouts ||
        a.r.svcLateReplies != b.r.svcLateReplies ||
        a.ledger.created != b.ledger.created ||
        a.ledger.retired != b.ledger.retired ||
        a.ledger.svcPending != b.ledger.svcPending)
        return false;
    if (a.r.classes.size() != b.r.classes.size())
        return false;
    for (std::size_t c = 0; c < a.r.classes.size(); ++c) {
        const SimResult::ClassResult &x = a.r.classes[c];
        const SimResult::ClassResult &y = b.r.classes[c];
        if (x.injected != y.injected || x.delivered != y.delivered ||
            x.avgLatency != y.avgLatency || x.p99Latency != y.p99Latency ||
            x.avgRtt != y.avgRtt || x.rttCount != y.rttCount ||
            x.sloViolations != y.sloViolations)
            return false;
    }
    for (int c = 0; c < kNumMsgClasses; ++c) {
        if (a.ledger.createdByClass[c] != b.ledger.createdByClass[c] ||
            a.ledger.retiredByClass[c] != b.ledger.retiredByClass[c])
            return false;
    }
    return true;
}

/** Conservation at drain; faults may strand flits but never over-retire. */
int
checkLedger(const SvcRun &run, bool faultFree, const char *what)
{
    int bad = 0;
    std::uint64_t created = 0, retired = 0;
    for (int c = 0; c < kNumMsgClasses; ++c) {
        created += run.ledger.createdByClass[c];
        retired += run.ledger.retiredByClass[c];
        if (run.ledger.retiredByClass[c] > run.ledger.createdByClass[c]) {
            std::fprintf(stderr, "%s: class %s over-retired\n", what,
                         msgClassName(static_cast<MsgClass>(c)));
            ++bad;
        }
        if (faultFree &&
            run.ledger.retiredByClass[c] != run.ledger.createdByClass[c]) {
            std::fprintf(stderr, "%s: class %s not conserved\n", what,
                         msgClassName(static_cast<MsgClass>(c)));
            ++bad;
        }
    }
    if (created != run.ledger.created || retired != run.ledger.retired) {
        std::fprintf(stderr, "%s: class sums disagree with aggregate\n",
                     what);
        ++bad;
    }
    if (run.ledger.svcPending != 0) {
        std::fprintf(stderr, "%s: reply obligations left at drain\n", what);
        ++bad;
    }
    return bad;
}

int
checkServiceMatrix(std::string &verdicts)
{
    MeshTopology topo(6, 6);
    std::vector<FaultSpec> critFaults = placeRandomFaults(
        topo, FaultClass::RouterCentricCritical, 2, 3, 11);

    int bad = 0;
    int combos = 0;
    for (RouterArch arch : kArchs) {
        for (RoutingKind routing : kRoutings) {
            SimConfig cfg = svcConfig(arch, routing);
            for (int f = 0; f < 2; ++f) {
                const bool faultFree = f == 0;
                const std::vector<FaultSpec> &faults =
                    faultFree ? std::vector<FaultSpec>{} : critFaults;
                char what[96];
                std::snprintf(what, sizeof what, "%s/%s %s",
                              toString(arch), toString(routing),
                              faultFree ? "fault-free" : "2-crit-faults");

                SvcRun serial = svcRun(cfg, faults, 1);
                bad += checkLedger(serial, faultFree, what);
                if (serial.r.replyCount == 0) {
                    std::fprintf(stderr, "%s: no replies delivered\n",
                                 what);
                    ++bad;
                }
                bool same = true;
                for (int shards : {2, 4}) {
                    if (!identical(serial, svcRun(cfg, faults, shards))) {
                        std::fprintf(stderr,
                                     "%s diverged at %d shards\n", what,
                                     shards);
                        same = false;
                        ++bad;
                    }
                }
                if (!verdicts.empty())
                    verdicts += ", ";
                verdicts += "{\"combo\": \"";
                verdicts += what;
                verdicts += "\", \"scheme\": \"";
                verdicts += svc::toString(svc::resolveScheme(cfg));
                verdicts += "\", \"identical\": ";
                verdicts += same ? "true" : "false";
                verdicts += "}";
                ++combos;
            }
        }
    }
    std::printf("bench_svc_smoke: %d service combos x {2,4} shards vs "
                "serial, %s\n", combos, bad ? "FAILED" : "identical");
    return bad;
}

int
checkKneeDeterminism(std::string &kneeJson)
{
    exp::SaturationSpec spec;
    spec.base = svcConfig(RouterArch::Generic, RoutingKind::XYYX);
    spec.base.warmupPackets = 10;
    spec.base.measurePackets = 100;
    spec.loRate = 0.02;
    spec.hiRate = 0.4;
    spec.rounds = 2;
    spec.probesPerRound = 2;

    spec.threads = 1;
    exp::SaturationResult serial = exp::findSaturation(spec);
    spec.threads = 4;
    exp::SaturationResult pooled = exp::findSaturation(spec);

    int bad = 0;
    if (serial.knees.size() != pooled.knees.size())
        ++bad;
    for (std::size_t i = 0; !bad && i < serial.knees.size(); ++i) {
        if (serial.knees[i].kneeRate != pooled.knees[i].kneeRate ||
            serial.knees[i].zeroLoadLatency !=
                pooled.knees[i].zeroLoadLatency ||
            serial.knees[i].saturated != pooled.knees[i].saturated)
            ++bad;
    }
    if (bad)
        std::fprintf(stderr,
                     "saturation knees diverged across thread counts\n");
    else
        std::printf("bench_svc_smoke: knee search identical at 1 and 4 "
                    "threads (%zu series)\n", serial.knees.size());

    kneeJson = "[";
    for (std::size_t i = 0; i < serial.knees.size(); ++i) {
        const exp::KneeEstimate &k = serial.knees[i];
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s{\"series\": \"%s\", \"kneeRate\": %.6f, "
                      "\"saturated\": %s}",
                      i ? ", " : "", k.series.c_str(), k.kneeRate,
                      k.saturated ? "true" : "false");
        kneeJson += buf;
    }
    kneeJson += "]";
    return bad;
}

} // namespace

int
main()
{
    printSeed();
    std::string verdicts, kneeJson;
    int bad = checkServiceMatrix(verdicts);
    bad += checkKneeDeterminism(kneeJson);

    std::string json = "{\"schema\": 1, \"bench\": \"svc_smoke\", "
                       "\"combos\": [" + verdicts + "], \"knees\": " +
                       kneeJson + ", \"passed\": " +
                       (bad ? "false" : "true") + "}\n";
    exp::writeBenchJson("svc_smoke", json);

    std::printf("bench_svc_smoke: %s\n", bad ? "FAILED" : "passed");
    return bad ? 1 : 0;
}
