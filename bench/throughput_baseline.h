/**
 * @file
 * Frozen pre-optimisation wall-clock numbers for bench_throughput.
 *
 * Measured at the seed revision (before the flat-hot-path PR) on the
 * reference container: best-of-3 serial runs of the exact probe grid
 * bench_throughput still uses (SimConfig defaults: 8x8 mesh, XY,
 * uniform Bernoulli traffic, 2,000 warm-up + 20,000 measured packets,
 * seed 0xC0FFEE, RelWithDebInfo, invariants compiled in and enabled).
 * `cycles` is the simulated-cycle count of that run; it is part of the
 * bit-identity contract, so a mismatch against the current build means
 * the workload changed and the speedup column is void (the bench
 * flags the row as stale instead of comparing apples to oranges).
 *
 * Re-freezing: run bench_throughput on the old revision and copy the
 * printed baseline block here.
 */
#ifndef ROCOSIM_BENCH_THROUGHPUT_BASELINE_H_
#define ROCOSIM_BENCH_THROUGHPUT_BASELINE_H_

#include <cstdint>

namespace noc::bench {

struct ThroughputBaseline {
    const char *tag;      ///< probe tag, matches bench_throughput's grid
    double wallMs;        ///< best-of-3 serial wall time at the seed rev
    std::uint64_t cycles; ///< simulated cycles of that run (identity guard)
};

/** Seed-revision numbers for the standard probe grid. */
constexpr ThroughputBaseline kThroughputBaseline[] = {
    {"roco_xy_0.02", 547.841, 62841},
    {"roco_xy_0.1", 207.598, 12608},
    {"roco_xy_0.3", 175.284, 4285},
    {"generic_xy_0.1", 259.905, 12611},
    {"ps_xy_0.1", 249.856, 12610},
};

} // namespace noc::bench

#endif // ROCOSIM_BENCH_THROUGHPUT_BASELINE_H_
