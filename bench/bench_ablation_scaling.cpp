/**
 * @file
 * Ablation: mesh-size scaling. The paper evaluates an 8x8 mesh; this
 * sweep checks that the RoCo advantages (latency at moderate load,
 * energy per packet) persist from 4x4 up to 32x32, and measures how
 * the sharded engine (src/par) scales the big meshes across cores.
 *
 * Output: the text tables below plus BENCH_ablation_scaling.json
 * (schema note in EXPERIMENTS.md) with the per-mesh results and the
 * serial-vs-sharded speedup curves. Sharded runs are checked
 * bit-identical to serial before their timing is reported.
 */
#include <chrono>

#include "bench_util.h"

namespace {

using namespace noc;
using namespace noc::bench;

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

SimConfig
meshConfig(RouterArch a, int k)
{
    SimConfig cfg = paperConfig(a, RoutingKind::XY, TrafficKind::Uniform,
                                0.2);
    cfg.meshWidth = k;
    cfg.meshHeight = k;
    return cfg;
}

/** Deterministic engine => every reported quantity matches exactly. */
bool
identical(const SimResult &a, const SimResult &b)
{
    return a.avgLatency == b.avgLatency && a.maxLatency == b.maxLatency &&
           a.p99Latency == b.p99Latency &&
           a.throughputFlits == b.throughputFlits &&
           a.injected == b.injected && a.delivered == b.delivered &&
           a.energyPerPacketNj == b.energyPerPacketNj &&
           a.cycles == b.cycles && a.timedOut == b.timedOut;
}

} // namespace

int
main()
{
    printSeed();

    std::puts("Ablation: mesh size scaling (uniform, XY, 0.2 "
              "flits/node/cycle)");
    std::printf("%-8s | %10s %12s %10s | %10s %10s\n", "mesh",
                "Generic", "PathSens", "RoCo", "Gen nJ/pkt",
                "RoCo nJ/pkt");
    hr();
    std::string json = "{\n  \"schema\": 1,\n  \"bench\": "
                       "\"ablation_scaling\",\n  \"meshes\": [\n";
    const int meshes[] = {4, 6, 8, 10, 12, 16, 32};
    for (std::size_t m = 0; m < std::size(meshes); ++m) {
        int k = meshes[m];
        double lat[3], energy[3];
        int i = 0;
        for (RouterArch a : kArchs) {
            Simulator sim(meshConfig(a, k));
            SimResult r = sim.run();
            lat[i] = r.avgLatency;
            energy[i] = r.energyPerPacketNj;
            ++i;
        }
        char mesh[16];
        std::snprintf(mesh, sizeof mesh, "%dx%d", k, k);
        std::printf("%-8s | %10.2f %12.2f %10.2f | %10.3f %10.3f\n",
                    mesh, lat[0], lat[1], lat[2], energy[0], energy[2]);
        char row[256];
        std::snprintf(row, sizeof row,
                      "    {\"mesh\": %d, \"latency\": {\"generic\": %.6f, "
                      "\"ps\": %.6f, \"roco\": %.6f}, "
                      "\"njPerPacket\": {\"generic\": %.6f, \"roco\": "
                      "%.6f}}%s\n",
                      k, lat[0], lat[1], lat[2], energy[0], energy[2],
                      m + 1 < std::size(meshes) ? "," : "");
        json += row;
    }
    std::puts("\nExpected: latency and energy grow with hop count; the "
              "RoCo-vs-generic energy\nratio stays roughly constant "
              "(the saving is per-hop).");

    // Serial-vs-sharded wall-clock scaling on the meshes big enough to
    // amortise the per-cycle barriers. Shard count never changes the
    // results (checked below), so this curve is purely about speed; on
    // a single-core host it is expectedly flat.
    std::puts("\nSharded-engine scaling (RoCo, uniform, XY, 0.2 f/n/c)");
    std::printf("%-8s | %9s %9s %9s %9s | %s\n", "mesh", "1 shard",
                "2 shards", "4 shards", "8 shards", "identical");
    hr();
    json += "  ],\n  \"speedup\": [\n";
    const int bigMeshes[] = {16, 32};
    const int shardCounts[] = {1, 2, 4, 8};
    for (std::size_t m = 0; m < std::size(bigMeshes); ++m) {
        int k = bigMeshes[m];
        double wallMs[std::size(shardCounts)];
        SimResult results[std::size(shardCounts)];
        for (std::size_t s = 0; s < std::size(shardCounts); ++s) {
            SimConfig cfg = meshConfig(RouterArch::Roco, k);
            cfg.shards = shardCounts[s];
            Simulator sim(cfg);
            auto t0 = std::chrono::steady_clock::now();
            results[s] = sim.run();
            wallMs[s] = msSince(t0);
        }
        bool same = true;
        for (std::size_t s = 1; s < std::size(shardCounts); ++s)
            same = same && identical(results[0], results[s]);
        char mesh[16];
        std::snprintf(mesh, sizeof mesh, "%dx%d", k, k);
        std::printf("%-8s | %8.2fx %8.2fx %8.2fx %8.2fx | %s\n", mesh,
                    1.0, wallMs[0] / wallMs[1], wallMs[0] / wallMs[2],
                    wallMs[0] / wallMs[3], same ? "yes" : "NO");
        json += "    {\"mesh\": ";
        char num[32];
        std::snprintf(num, sizeof num, "%d", k);
        json += num;
        json += ", \"identical\": ";
        json += same ? "true" : "false";
        json += ", \"points\": [";
        for (std::size_t s = 0; s < std::size(shardCounts); ++s) {
            char pt[96];
            std::snprintf(pt, sizeof pt,
                          "%s{\"shards\": %d, \"wallMs\": %.3f, "
                          "\"speedup\": %.4f}",
                          s ? ", " : "", shardCounts[s], wallMs[s],
                          wallMs[0] / wallMs[s]);
            json += pt;
        }
        json += "]}";
        json += m + 1 < std::size(bigMeshes) ? ",\n" : "\n";
        if (!same) {
            std::fprintf(stderr, "FATAL: sharded %dx%d run diverged "
                                 "from serial\n", k, k);
            return 1;
        }
    }
    json += "  ]\n}\n";
    exp::writeBenchJson("ablation_scaling", json);
    std::puts("\nSpeedup is wall-clock only — sharded results are "
              "bit-identical to serial\n(divergence is a fatal error). "
              "Curves flatten on machines with fewer cores\nthan "
              "shards.");
    return 0;
}
