/**
 * @file
 * Ablation: mesh-size scaling. The paper evaluates an 8x8 mesh; this
 * sweep checks that the RoCo advantages (latency at moderate load,
 * energy per packet) persist from 4x4 to 12x12.
 */
#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    printSeed();

    std::puts("Ablation: mesh size scaling (uniform, XY, 0.2 "
              "flits/node/cycle)");
    std::printf("%-8s | %10s %12s %10s | %10s %10s\n", "mesh",
                "Generic", "PathSens", "RoCo", "Gen nJ/pkt",
                "RoCo nJ/pkt");
    hr();
    for (int k : {4, 6, 8, 10, 12}) {
        double lat[3], energy[3];
        int i = 0;
        for (RouterArch a : kArchs) {
            SimConfig cfg = paperConfig(a, RoutingKind::XY,
                                        TrafficKind::Uniform, 0.2);
            cfg.meshWidth = k;
            cfg.meshHeight = k;
            Simulator sim(cfg);
            SimResult r = sim.run();
            lat[i] = r.avgLatency;
            energy[i] = r.energyPerPacketNj;
            ++i;
        }
        char mesh[16];
        std::snprintf(mesh, sizeof mesh, "%dx%d", k, k);
        std::printf("%-8s | %10.2f %12.2f %10.2f | %10.3f %10.3f\n",
                    mesh, lat[0], lat[1], lat[2], energy[0], energy[2]);
    }
    std::puts("\nExpected: latency and energy grow with hop count; the "
              "RoCo-vs-generic energy\nratio stays roughly constant "
              "(the saving is per-hop).");
    return 0;
}
