/**
 * @file
 * Shared driver for the Figure 8/9/10 latency-vs-injection-rate
 * sweeps: one traffic pattern, all routings, all architectures.
 */
#ifndef ROCOSIM_BENCH_BENCH_LATENCY_SWEEP_H_
#define ROCOSIM_BENCH_BENCH_LATENCY_SWEEP_H_

#include "bench_util.h"

namespace noc::bench {

inline int
latencySweep(TrafficKind traffic, const char *figure)
{
    const double rates[] = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4};

    std::printf("%s: average latency (cycles) vs injection rate, 8x8 "
                "mesh, %s traffic\n", figure, toString(traffic));
    for (RoutingKind routing : kRoutings) {
        std::printf("\n-- %s routing --\n", toString(routing));
        std::printf("%-6s %10s %12s %10s   (throughput f/n/c)\n",
                    "rate", "Generic", "PathSens", "RoCo");
        hr();
        for (double rate : rates) {
            std::printf("%-6.2f", rate);
            char thr[64];
            int off = 0;
            for (RouterArch a : kArchs) {
                SimResult r = run(a, routing, traffic, rate);
                std::printf(" %9.2f%c", r.avgLatency,
                            r.timedOut ? '*' : ' ');
                off += std::snprintf(thr + off, sizeof thr - off,
                                     " %.3f", r.throughputFlits);
            }
            std::printf("  (%s )\n", thr);
        }
    }
    std::puts("\n'*' marks saturated runs cut at the cycle budget.");
    std::puts("Paper shape: RoCo lowest at low/mid load; all curves "
              "diverge at saturation.");
    return 0;
}

} // namespace noc::bench

#endif // ROCOSIM_BENCH_BENCH_LATENCY_SWEEP_H_
