/**
 * @file
 * Shared driver for the Figure 8/9/10 latency-vs-injection-rate
 * sweeps: one traffic pattern, all routings, all architectures.
 *
 * The whole grid (3 routings x 8 rates x 3 archs = 72 points) is one
 * SweepSpec fanned across the thread pool; the tables are then printed
 * from the collected results in the figures' order.
 */
#ifndef ROCOSIM_BENCH_BENCH_LATENCY_SWEEP_H_
#define ROCOSIM_BENCH_BENCH_LATENCY_SWEEP_H_

#include "bench_util.h"

namespace noc::bench {

inline int
latencySweep(TrafficKind traffic, const char *figure, const char *specName)
{
    exp::SweepSpec spec = makeGridSpec(specName);
    spec.base.traffic = traffic;
    spec.rates = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4};
    exp::SweepResults res = runSweep(spec);

    std::printf("%s: average latency (cycles) vs injection rate, 8x8 "
                "mesh, %s traffic\n", figure, toString(traffic));
    perRoutingTables(
        spec, 6, "rate", "   (throughput f/n/c)", spec.rates.size(),
        [&](std::size_t ro, std::size_t ra) {
            std::printf("%-6.2f", spec.rates[ra]);
            char thr[64];
            int off = 0;
            for (std::size_t ar = 0; ar < spec.archs.size(); ++ar) {
                const SimResult &r = res.at(spec, ro, 0, ra, 0, ar);
                std::printf(" %9.2f%c", r.avgLatency,
                            r.timedOut ? '*' : ' ');
                off += std::snprintf(thr + off, sizeof thr - off,
                                     " %.3f", r.throughputFlits);
            }
            std::printf("  (%s )\n", thr);
        });
    std::puts("\n'*' marks saturated runs cut at the cycle budget.");
    std::puts("Paper shape: RoCo lowest at low/mid load; all curves "
              "diverge at saturation.");
    return 0;
}

} // namespace noc::bench

#endif // ROCOSIM_BENCH_BENCH_LATENCY_SWEEP_H_
