/**
 * @file
 * Figure 14: the composite Performance-Energy-Fault-tolerance metric
 * (PEF = EDP / completion probability) and the average latency of the
 * survivors, vs the number of injected faults — (a) critical-region
 * faults, (b) non-critical-region faults.
 */
#include "bench_util.h"
#include "fault/fault_injector.h"

namespace {

void
panel(noc::FaultClass cls, const char *title)
{
    using namespace noc;
    using namespace noc::bench;

    const int faultCounts[] = {1, 2, 4};
    const std::uint64_t seeds[] = {11, 22, 33};
    MeshTopology topo(8, 8);

    std::printf("\n%s\n", title);
    std::printf("%-8s | %30s | %27s\n", "",
                "PEF (nJ*cycles/probability)", "avg latency (cycles)");
    std::printf("%-8s | %8s %12s %8s | %8s %9s %8s\n", "#faults",
                "Generic", "PathSens", "RoCo", "Generic", "PathSens",
                "RoCo");
    hr();
    for (int nf : faultCounts) {
        double pef[3] = {};
        double lat[3] = {};
        int i = 0;
        for (RouterArch a : kArchs) {
            for (std::uint64_t seed : seeds) {
                auto faults = placeRandomFaults(topo, cls, nf, 3, seed);
                SimResult r =
                    run(a, RoutingKind::XY, TrafficKind::Uniform, 0.3,
                        faults);
                pef[i] += r.pef / std::size(seeds);
                lat[i] += r.avgLatency / std::size(seeds);
            }
            ++i;
        }
        std::printf("%-8d | %8.1f %12.1f %8.1f | %8.1f %9.1f %8.1f\n",
                    nf, pef[0], pef[1], pef[2], lat[0], lat[1], lat[2]);
    }
}

} // namespace

int
main()
{
    std::puts("Figure 14: Performance-Energy-Fault (PEF) product, 30% "
              "injection, XY routing");
    panel(noc::FaultClass::RouterCentricCritical,
          "(a) critical-region faults");
    panel(noc::FaultClass::MessageCentricNonCritical,
          "(b) non-critical-region faults");
    std::puts("\nPaper: RoCo ~50% better PEF than the generic router "
              "and ~35% better than Path-Sensitive.");
    return 0;
}
