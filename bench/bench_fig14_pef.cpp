/**
 * @file
 * Figure 14: the composite Performance-Energy-Fault-tolerance metric
 * (PEF = EDP / completion probability) and the average latency of the
 * survivors, vs the number of injected faults — (a) critical-region
 * faults, (b) non-critical-region faults.
 *
 * Both panels share one sweep: the fault-set axis enumerates
 * (class, count, placement) so all 54 points run on the pool at once.
 */
#include "bench_fault_sweep.h"

namespace {

constexpr int kFaultCounts[] = {1, 2, 4};
constexpr std::uint64_t kSeeds[] = {11, 22, 33};
constexpr std::size_t kNumCounts = std::size(kFaultCounts);
constexpr std::size_t kNumSeeds = std::size(kSeeds);

void
panel(const noc::exp::SweepSpec &spec, const noc::exp::SweepResults &res,
      std::size_t clsIdx, const char *title)
{
    using namespace noc::bench;

    std::printf("\n%s\n", title);
    std::printf("%-8s | %30s | %27s\n", "",
                "PEF (nJ*cycles/probability)", "avg latency (cycles)");
    std::printf("%-8s | %8s %12s %8s | %8s %9s %8s\n", "#faults",
                "Generic", "PathSens", "RoCo", "Generic", "PathSens",
                "RoCo");
    hr();
    for (std::size_t nfi = 0; nfi < kNumCounts; ++nfi) {
        double pef[3] = {};
        double lat[3] = {};
        for (std::size_t ar = 0; ar < spec.archs.size(); ++ar) {
            for (std::size_t s = 0; s < kNumSeeds; ++s) {
                std::size_t fs = (clsIdx * kNumCounts + nfi) * kNumSeeds + s;
                const noc::SimResult &r = res.at(spec, 0, 0, 0, fs, ar);
                pef[ar] += r.pef / kNumSeeds;
                lat[ar] += r.avgLatency / kNumSeeds;
            }
        }
        std::printf("%-8d | %8.1f %12.1f %8.1f | %8.1f %9.1f %8.1f\n",
                    kFaultCounts[nfi], pef[0], pef[1], pef[2], lat[0],
                    lat[1], lat[2]);
    }
}

} // namespace

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    MeshTopology topo(8, 8);
    exp::SweepSpec spec = makeSpec("fig14_pef");
    spec.base.injectionRate = 0.3;
    spec.archs = {std::begin(kArchs), std::end(kArchs)};
    const struct {
        FaultClass cls;
        const char *prefix;
    } classes[] = {{FaultClass::RouterCentricCritical, "crit"},
                   {FaultClass::MessageCentricNonCritical, "noncrit"}};
    for (const auto &c : classes) {
        for (int nf : kFaultCounts) {
            for (std::uint64_t seed : kSeeds) {
                spec.faultSets.push_back(
                    {faultSetLabel(c.prefix, nf, seed),
                     placeRandomFaults(topo, c.cls, nf, 3, seed)});
            }
        }
    }
    exp::SweepResults res = runSweep(spec);

    std::puts("Figure 14: Performance-Energy-Fault (PEF) product, 30% "
              "injection, XY routing");
    panel(spec, res, 0, "(a) critical-region faults");
    panel(spec, res, 1, "(b) non-critical-region faults");
    std::puts("\nPaper: RoCo ~50% better PEF than the generic router "
              "and ~35% better than Path-Sensitive.");
    return 0;
}
