/**
 * @file
 * Single-core flit-throughput benchmark for the flat hot path.
 *
 * Runs a fixed probe grid (8x8 mesh, XY routing, uniform traffic at
 * three loads across all three router architectures, SimConfig
 * defaults otherwise) three ways per probe:
 *
 *   timed   - serial engine, idle-skip on (the production hot path),
 *             best-of-NOC_BENCH_REPS wall time
 *   noskip  - serial engine, idle-skip off
 *   sharded - deterministic 2-shard engine
 *
 * The timed run yields flit-cycles simulated per wall second (the
 * ledger's flitCycles numerator over the best wall time) and a speedup
 * against the frozen seed-revision numbers in throughput_baseline.h.
 * The other two runs are correctness gates: every SimResult field and
 * the flit ledger must match the timed run bit-for-bit, otherwise the
 * bench exits non-zero — an optimisation that changes results is a
 * bug, not a speedup.  A baseline row whose simulated-cycle count no
 * longer matches the current build is reported as stale and its
 * speedup suppressed rather than compared across different workloads.
 *
 * Writes BENCH_throughput.json (NOC_BENCH_JSON=0 suppresses).  The
 * ctest registration shrinks the workload via NOC_BENCH_PACKETS so the
 * equivalence gates run everywhere (including under tsan); CI's perf
 * job runs the full grid and uploads the JSON artifact.
 */
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "throughput_baseline.h"

namespace {

using namespace noc;
using namespace noc::bench;

struct Probe {
    const char *tag;
    RouterArch arch;
    double rate;
};

constexpr Probe kProbes[] = {
    {"roco_xy_0.02", RouterArch::Roco, 0.02},
    {"roco_xy_0.1", RouterArch::Roco, 0.1},
    {"roco_xy_0.3", RouterArch::Roco, 0.3},
    {"generic_xy_0.1", RouterArch::Generic, 0.1},
    {"ps_xy_0.1", RouterArch::PathSensitive, 0.1},
};

/** Everything one run produces that the equivalence gate compares. */
struct RunObs {
    SimResult r;
    FlitLedger ledger;
    std::uint64_t stepsExecuted = 0;
    std::uint64_t stepsScheduled = 0;
    double wallMs = 0;
};

RunObs
runOnce(SimConfig cfg)
{
    Simulator sim(cfg);
    auto t0 = std::chrono::steady_clock::now();
    RunObs obs;
    obs.r = sim.run();
    obs.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    obs.ledger = sim.network().ledger();
    obs.stepsExecuted = sim.network().routerStepsExecuted();
    obs.stepsScheduled = sim.network().routerStepsScheduled();
    return obs;
}

bool
identical(const RunObs &a, const RunObs &b)
{
    return a.r.avgLatency == b.r.avgLatency &&
           a.r.latencyStddev == b.r.latencyStddev &&
           a.r.maxLatency == b.r.maxLatency &&
           a.r.p50Latency == b.r.p50Latency &&
           a.r.p99Latency == b.r.p99Latency &&
           a.r.throughputFlits == b.r.throughputFlits &&
           a.r.injected == b.r.injected &&
           a.r.delivered == b.r.delivered &&
           a.r.completion == b.r.completion &&
           a.r.energyPerPacketNj == b.r.energyPerPacketNj &&
           a.r.edp == b.r.edp && a.r.pef == b.r.pef &&
           a.r.cycles == b.r.cycles && a.r.timedOut == b.r.timedOut &&
           a.ledger.created == b.ledger.created &&
           a.ledger.retired == b.ledger.retired &&
           a.ledger.lastDelivery == b.ledger.lastDelivery &&
           a.ledger.flitCycles == b.ledger.flitCycles;
}

const ThroughputBaseline *
findBaseline(const char *tag)
{
    for (const ThroughputBaseline &b : kThroughputBaseline)
        if (std::string(b.tag) == tag)
            return &b;
    return nullptr;
}

} // namespace

int
main()
{
    const int reps =
        static_cast<int>(envOr("NOC_BENCH_REPS", 3));
    const std::uint64_t warmup = envOr("NOC_BENCH_WARMUP", 2000);
    const std::uint64_t packets = envOr("NOC_BENCH_PACKETS", 20000);
    const bool fullGrid = warmup == 2000 && packets == 20000;

    std::printf("bench_throughput: 8x8 XY uniform, %" PRIu64
                " packets (+%" PRIu64 " warmup), best of %d\n",
                packets, warmup, reps);
    hr();
    std::printf("%-16s %9s %9s %12s %8s %7s %s\n", "probe", "wall ms",
                "base ms", "flit-cyc/s", "speedup", "skip%", "gates");
    std::string rows;
    int bad = 0;

    for (const Probe &p : kProbes) {
        SimConfig cfg;
        cfg.arch = p.arch;
        cfg.injectionRate = p.rate;
        cfg.warmupPackets = warmup;
        cfg.measurePackets = packets;

        RunObs best = runOnce(cfg);
        for (int rep = 1; rep < reps; ++rep) {
            RunObs again = runOnce(cfg);
            if (!identical(best, again)) {
                std::fprintf(stderr, "%s: repeat run diverged\n", p.tag);
                ++bad;
            }
            best.wallMs = std::min(best.wallMs, again.wallMs);
        }

        SimConfig off = cfg;
        off.idleSkip = false;
        RunObs noskip = runOnce(off);
        if (!identical(best, noskip)) {
            std::fprintf(stderr, "%s: idle-skip off diverged\n", p.tag);
            ++bad;
        }

        SimConfig sh = cfg;
        sh.shards = 2;
        RunObs sharded = runOnce(sh);
        if (!identical(best, sharded)) {
            std::fprintf(stderr, "%s: 2-shard run diverged\n", p.tag);
            ++bad;
        }

        const double wallSec = best.wallMs / 1000.0;
        const double flitCycPerSec =
            wallSec > 0 ? static_cast<double>(best.ledger.flitCycles) /
                              wallSec
                        : 0;
        const double skipPct =
            best.stepsScheduled
                ? 100.0 * (1.0 - static_cast<double>(best.stepsExecuted) /
                                     static_cast<double>(
                                         best.stepsScheduled))
                : 0;

        const ThroughputBaseline *base =
            fullGrid ? findBaseline(p.tag) : nullptr;
        const bool stale = base && base->cycles != best.r.cycles;
        const double speedup =
            base && !stale && best.wallMs > 0 ? base->wallMs / best.wallMs
                                              : 0;
        if (stale) {
            std::fprintf(stderr,
                         "%s: baseline stale (cycles %" PRIu64
                         " vs recorded %" PRIu64 "), speedup suppressed\n",
                         p.tag, static_cast<std::uint64_t>(best.r.cycles),
                         base->cycles);
        }

        char spdBuf[32], baseBuf[32];
        if (speedup > 0)
            std::snprintf(spdBuf, sizeof spdBuf, "%.2fx", speedup);
        else
            std::snprintf(spdBuf, sizeof spdBuf, "%s",
                          stale ? "stale" : "n/a");
        if (base)
            std::snprintf(baseBuf, sizeof baseBuf, "%.1f", base->wallMs);
        else
            std::snprintf(baseBuf, sizeof baseBuf, "-");
        std::printf("%-16s %9.1f %9s %12.3e %8s %6.1f%% %s\n", p.tag,
                    best.wallMs, baseBuf, flitCycPerSec, spdBuf, skipPct,
                    bad ? "DIVERGED" : "ok");

        char row[512];
        std::snprintf(
            row, sizeof row,
            "    {\"tag\": \"%s\", \"wallMs\": %.3f, \"cycles\": %" PRIu64
            ", \"flitCycles\": %" PRIu64 ", \"flitCyclesPerSec\": %.1f, "
            "\"baselineWallMs\": %.3f, \"speedup\": %.4f, "
            "\"baselineStale\": %s, \"stepsExecuted\": %" PRIu64
            ", \"stepsScheduled\": %" PRIu64 "}",
            p.tag, best.wallMs, static_cast<std::uint64_t>(best.r.cycles),
            best.ledger.flitCycles, flitCycPerSec,
            base ? base->wallMs : 0.0, speedup, stale ? "true" : "false",
            best.stepsExecuted, best.stepsScheduled);
        if (!rows.empty())
            rows += ",\n";
        rows += row;
    }

    hr();
    std::printf("bench_throughput: equivalence gates (noskip, 2-shard, "
                "repeat) %s\n",
                bad ? "DIVERGED" : "all identical");

    std::string json = "{\n  \"schema\": 1,\n  \"bench\": "
                       "\"throughput\",\n  \"mesh\": 8,\n";
    json += "  \"warmupPackets\": " + std::to_string(warmup) + ",\n";
    json += "  \"measurePackets\": " + std::to_string(packets) + ",\n";
    json += "  \"reps\": " + std::to_string(reps) + ",\n";
    json += std::string("  \"fullGrid\": ") +
            (fullGrid ? "true" : "false") + ",\n";
    json += std::string("  \"identical\": ") + (bad ? "false" : "true") +
            ",\n  \"probes\": [\n" + rows + "\n  ]\n}\n";
    exp::writeBenchJson("throughput", json);

    return bad ? 1 : 0;
}
