/**
 * @file
 * Ablation: buffer-depth sensitivity. The paper fixes every router at
 * 60 flits of storage (4-deep generic, 5-deep modular); this sweep
 * shows how each architecture's latency responds to deeper or
 * shallower VCs at 30% uniform load.
 */
#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    printSeed();

    std::puts("Ablation: VC buffer depth vs latency (uniform, XY, "
              "30% injection)");
    std::printf("%-8s %10s %12s %10s\n", "depth", "Generic", "PathSens",
                "RoCo");
    hr();
    for (int depth : {2, 3, 4, 5, 6, 8}) {
        std::printf("%-8d", depth);
        for (RouterArch a : kArchs) {
            SimConfig cfg = paperConfig(a, RoutingKind::XY,
                                        TrafficKind::Uniform, 0.3);
            cfg.bufferDepthGeneric = depth;
            cfg.bufferDepthModular = depth;
            Simulator sim(cfg);
            SimResult r = sim.run();
            std::printf(" %9.2f%c", r.avgLatency, r.timedOut ? '*' : ' ');
        }
        std::puts("");
    }
    std::puts("\nDepths below the credit round-trip (~5 cycles) "
              "throttle single-VC flows;\nthe paper's 4/5-deep choices "
              "sit right at the knee.");
    return 0;
}
