/**
 * @file
 * Table 2: non-blocking (maximal matching) probabilities of the three
 * router architectures, from the analytical model of Section 3.2.
 */
#include <cstdio>

#include "metrics/matching.h"

int
main()
{
    using namespace noc;
    std::puts("Table 2: Non-Blocking Probabilities (N = 5)");
    std::printf("%-16s %-12s %-10s\n", "router", "computed", "paper");
    std::printf("%-16s %-12.4f %-10s\n", "Generic",
                nonBlockingProbability(RouterArch::Generic), "0.043");
    std::printf("%-16s %-12.4f %-10s\n", "Path-Sensitive",
                nonBlockingProbability(RouterArch::PathSensitive),
                "0.125");
    std::printf("%-16s %-12.4f %-10s\n", "RoCo",
                nonBlockingProbability(RouterArch::Roco), "0.25");

    std::puts("\nEquation 1: F(N) = N! - sum C(N,j) F(N-j)");
    for (int n = 1; n <= 8; ++n)
        std::printf("  F(%d) = %llu\n", n,
                    static_cast<unsigned long long>(
                        nonBlockingMatchings(n)));
    return 0;
}
