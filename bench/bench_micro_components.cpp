/**
 * @file
 * google-benchmark microbenchmarks: raw component costs and whole
 * network simulation rates per architecture.
 */
#include <benchmark/benchmark.h>

#include "router/arbiter.h"
#include "router/roco/mirror_allocator.h"
#include "sim/network.h"

namespace {

using namespace noc;

void
BM_RoundRobinArbiter(benchmark::State &state)
{
    RoundRobinArbiter arb(static_cast<int>(state.range(0)));
    std::uint64_t mask = (1ull << state.range(0)) - 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.arbitrate(mask));
}
BENCHMARK(BM_RoundRobinArbiter)->Arg(3)->Arg(5)->Arg(15);

void
BM_MatrixArbiter(benchmark::State &state)
{
    MatrixArbiter arb(static_cast<int>(state.range(0)));
    std::uint64_t mask = (1ull << state.range(0)) - 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.arbitrate(mask));
}
BENCHMARK(BM_MatrixArbiter)->Arg(3)->Arg(5)->Arg(15);

void
BM_MirrorAllocator(benchmark::State &state)
{
    MirrorAllocator alloc(3);
    const std::uint64_t reqs[2][2] = {{0b101, 0b010}, {0b011, 0b100}};
    const std::uint64_t spec[2][2] = {{0, 0}, {0, 0}};
    MirrorAllocator::Grant grants[2];
    for (auto _ : state) {
        MirrorAllocator::ArbOps ops;
        benchmark::DoNotOptimize(
            alloc.allocate(reqs, spec, 2, grants, ops));
    }
}
BENCHMARK(BM_MirrorAllocator);

/** Cycles simulated per second for a loaded 8x8 network. */
void
BM_NetworkStep(benchmark::State &state)
{
    SimConfig cfg;
    cfg.arch = static_cast<RouterArch>(state.range(0));
    cfg.injectionRate = 0.3;
    Network net(cfg);
    Cycle now = 0;
    for (Cycle t = 0; t < 500; ++t) // warm the network up
        net.step(now++, true, false);
    for (auto _ : state)
        net.step(now++, true, false);
    state.SetItemsProcessed(state.iterations() * net.numNodes());
}
BENCHMARK(BM_NetworkStep)
    ->Arg(static_cast<int>(RouterArch::Generic))
    ->Arg(static_cast<int>(RouterArch::PathSensitive))
    ->Arg(static_cast<int>(RouterArch::Roco));

} // namespace

BENCHMARK_MAIN();
