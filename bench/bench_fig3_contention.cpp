/**
 * @file
 * Figure 3: input contention probabilities vs flit injection rate on
 * the 8x8 mesh with uniform traffic — (a) row input under XY, (b)
 * column input under XY, (c) adaptive routing.
 *
 * Expected shape: generic > Path-Sensitive > RoCo at every point, and
 * row contention > column contention under XY (X-first routing).
 */
#include <cstdio>

#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    exp::SweepSpec spec = makeSpec("fig3_contention");
    spec.archs = {std::begin(kArchs), std::end(kArchs)};
    spec.routings = {RoutingKind::XY, RoutingKind::Adaptive};
    spec.rates = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    exp::SweepResults res = runSweep(spec);

    std::puts("Figure 3(a,b): contention at row/column input, XY "
              "routing, uniform traffic");
    std::printf("%-6s | %27s | %27s\n", "", "row input (a)",
                "column input (b)");
    std::printf("%-6s | %8s %9s %8s | %8s %9s %8s\n", "rate", "Generic",
                "PathSens", "RoCo", "Generic", "PathSens", "RoCo");
    hr();
    for (std::size_t ra = 0; ra < spec.rates.size(); ++ra) {
        double row[3], col[3];
        for (std::size_t ar = 0; ar < spec.archs.size(); ++ar) {
            const SimResult &r = res.at(spec, 0, 0, ra, 0, ar);
            row[ar] = r.rowContention;
            col[ar] = r.colContention;
        }
        std::printf("%-6.2f | %8.3f %9.3f %8.3f | %8.3f %9.3f %8.3f\n",
                    spec.rates[ra], row[0], row[1], row[2], col[0],
                    col[1], col[2]);
    }

    std::puts("\nFigure 3(c): contention with adaptive routing "
              "(row+column combined)");
    std::printf("%-6s %8s %9s %8s\n", "rate", "Generic", "PathSens",
                "RoCo");
    hr();
    for (std::size_t ra = 0; ra < spec.rates.size(); ++ra) {
        std::printf("%-6.2f", spec.rates[ra]);
        for (std::size_t ar = 0; ar < spec.archs.size(); ++ar) {
            const SimResult &r = res.at(spec, 1, 0, ra, 0, ar);
            std::printf(" %8.3f",
                        (r.rowContention + r.colContention) / 2.0);
        }
        std::puts("");
    }
    std::puts("\nPaper shape: Generic > Path-Sensitive > RoCo "
              "everywhere; row > column under XY.");
    return 0;
}
