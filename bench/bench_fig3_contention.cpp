/**
 * @file
 * Figure 3: input contention probabilities vs flit injection rate on
 * the 8x8 mesh with uniform traffic — (a) row input under XY, (b)
 * column input under XY, (c) adaptive routing.
 *
 * Expected shape: generic > Path-Sensitive > RoCo at every point, and
 * row contention > column contention under XY (X-first routing).
 */
#include <cstdio>

#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    const double rates[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};

    std::puts("Figure 3(a,b): contention at row/column input, XY "
              "routing, uniform traffic");
    std::printf("%-6s | %27s | %27s\n", "", "row input (a)",
                "column input (b)");
    std::printf("%-6s | %8s %9s %8s | %8s %9s %8s\n", "rate", "Generic",
                "PathSens", "RoCo", "Generic", "PathSens", "RoCo");
    hr();
    for (double rate : rates) {
        double row[3], col[3];
        int i = 0;
        for (RouterArch a : kArchs) {
            SimResult r =
                run(a, RoutingKind::XY, TrafficKind::Uniform, rate);
            row[i] = r.rowContention;
            col[i] = r.colContention;
            ++i;
        }
        std::printf("%-6.2f | %8.3f %9.3f %8.3f | %8.3f %9.3f %8.3f\n",
                    rate, row[0], row[1], row[2], col[0], col[1],
                    col[2]);
    }

    std::puts("\nFigure 3(c): contention with adaptive routing "
              "(row+column combined)");
    std::printf("%-6s %8s %9s %8s\n", "rate", "Generic", "PathSens",
                "RoCo");
    hr();
    for (double rate : rates) {
        std::printf("%-6.2f", rate);
        for (RouterArch a : kArchs) {
            SimResult r = run(a, RoutingKind::Adaptive,
                              TrafficKind::Uniform, rate);
            double combined =
                (r.rowContention + r.colContention) / 2.0;
            std::printf(" %8.3f", combined);
        }
        std::puts("");
    }
    std::puts("\nPaper shape: Generic > Path-Sensitive > RoCo "
              "everywhere; row > column under XY.");
    return 0;
}
