/**
 * @file
 * Supplementary to Figure 13: where the energy goes — per-component
 * shares (buffers, crossbar, arbiters, routing, links, leakage) for
 * each architecture at 30% uniform injection. This is the structural
 * explanation of the RoCo saving: the crossbar and arbiter slices
 * shrink while the common buffer/link slices stay put.
 */
#include "bench_util.h"

int
main()
{
    using namespace noc;
    using namespace noc::bench;

    printSeed();

    std::puts("Energy breakdown per packet (nJ), uniform, XY, 30% "
              "injection");
    std::printf("%-16s %8s %9s %9s %8s %7s %9s %8s\n", "router",
                "buffer", "crossbar", "arbiters", "routing", "link",
                "leakage", "total");
    hr();
    for (RouterArch a : kArchs) {
        SimResult r = run(a, RoutingKind::XY, TrafficKind::Uniform, 0.3);
        double pkts = static_cast<double>(r.delivered);
        auto nj = [&](double pj) { return pj / pkts / 1000.0; };
        const EnergyBreakdown &e = r.energy;
        std::printf("%-16s %8.3f %9.3f %9.3f %8.3f %7.3f %9.3f %8.3f\n",
                    toString(a), nj(e.bufferPj), nj(e.crossbarPj),
                    nj(e.arbiterPj), nj(e.routingPj), nj(e.linkPj),
                    nj(e.leakagePj), r.energyPerPacketNj);
    }
    std::puts("\nExpected: buffer and link shares are nearly identical "
              "across designs; the\ncrossbar share is the main "
              "differentiator (5x5 vs decomposed 4x4 vs 2x(2x2)),\n"
              "and RoCo's early ejection removes one buffer+crossbar "
              "pass per packet.");
    return 0;
}
