/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * The paper's protocol (20,000 warm-up + 1,000,000 measured packets)
 * is scaled down so the whole suite runs in minutes on a laptop; the
 * comparisons are stable at this scale. Override with:
 *   NOC_BENCH_WARMUP=<packets>  NOC_BENCH_PACKETS=<packets>
 *   NOC_BENCH_SEED=<seed>       NOC_BENCH_THREADS=<pool size>
 *   NOC_BENCH_JSON=0            NOC_BENCH_JSON_DIR=<dir>
 *
 * Grid benches declare a SweepSpec and fan it across a thread pool
 * (exp/sweep.h); the per-point results are identical to a serial run,
 * so the printed tables are thread-count independent.
 */
#ifndef ROCOSIM_BENCH_BENCH_UTIL_H_
#define ROCOSIM_BENCH_BENCH_UTIL_H_

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/stat.h>

#include "exp/json_out.h"
#include "exp/sweep.h"
#include "farm/farm.h"
#include "sim/simulator.h"

namespace noc::bench {

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/** Base RNG seed for every bench run (NOC_BENCH_SEED to override). */
inline std::uint64_t
benchSeed()
{
    return envOr("NOC_BENCH_SEED", 0xC0FFEEull);
}

/** The evaluation configuration of Section 5.4, scaled. */
inline SimConfig
paperConfig(RouterArch arch, RoutingKind routing, TrafficKind traffic,
            double rate)
{
    SimConfig cfg;
    cfg.arch = arch;
    cfg.routing = routing;
    cfg.traffic = traffic;
    cfg.injectionRate = rate;
    cfg.seed = benchSeed();
    cfg.warmupPackets = envOr("NOC_BENCH_WARMUP", 800);
    cfg.measurePackets = envOr("NOC_BENCH_PACKETS", 6000);
    cfg.maxCycles = 150000;
    return cfg;
}

inline SimResult
run(RouterArch arch, RoutingKind routing, TrafficKind traffic,
    double rate, const std::vector<FaultSpec> &faults = {})
{
    Simulator sim(paperConfig(arch, routing, traffic, rate), faults);
    return sim.run();
}

/** Seed line for serial (non-sweep) benches. */
inline void
printSeed()
{
    std::printf("seed: %" PRIu64 "\n", benchSeed());
}

/** A sweep spec named @p name with the paper base config. */
inline exp::SweepSpec
makeSpec(const char *name)
{
    exp::SweepSpec spec;
    spec.name = name;
    spec.base = paperConfig(RouterArch::Roco, RoutingKind::XY,
                            TrafficKind::Uniform, 0.1);
    return spec;
}

/**
 * Runs @p spec on the shared pool, writes BENCH_<name>.json, and
 * prints the seed/threads header every bench output carries.
 *
 * With NOC_FARM_DIR set, the grid additionally runs through the
 * multi-process sweep farm (src/farm): the spec's jobs are journaled
 * under $NOC_FARM_DIR/<name> and executed by NOC_FARM_WORKERS forked
 * workers (default 2), writing the farm's schema-4 canonical json next
 * to the journal. The in-process results below are still what the
 * printed tables use — farm results are bit-identical per point (same
 * config, same seed), so this is a checkpointed second lane, not a
 * fork of the numbers. A crashed bench machine resumes by re-running
 * the bench with the same NOC_FARM_DIR.
 */
inline exp::SweepResults
runSweep(const exp::SweepSpec &spec)
{
    if (const char *farmDir = std::getenv("NOC_FARM_DIR");
        farmDir != nullptr && *farmDir != '\0') {
        ::mkdir(farmDir, 0777); // per-bench journals nest underneath
        farm::FarmOptions fopts;
        fopts.dir = std::string(farmDir) + "/" + spec.name;
        fopts.workers =
            static_cast<int>(envOr("NOC_FARM_WORKERS", 2));
        farm::FarmRun fr = farm::runFarm(spec, fopts);
        if (fr.complete)
            std::printf("farm: %s (%zu jobs, %zu reused)\n",
                        fr.jsonPath.c_str(), fr.jobs, fr.reused);
        else
            std::printf("farm: INCOMPLETE — %s\n", fr.error.c_str());
    }
    exp::SweepRunner runner;
    exp::SweepResults res = runner.run(spec);
    exp::writeSweepJson(spec, res);
    std::printf("seed: %" PRIu64 "   threads: %d   points: %zu   "
                "packets: %" PRIu64 " (+%" PRIu64 " warmup)   "
                "wall: %.1f s\n",
                spec.base.seed, res.threads, res.points.size(),
                spec.base.measurePackets, spec.base.warmupPackets,
                res.totalWallMs / 1000.0);
    return res;
}

constexpr RouterArch kArchs[] = {RouterArch::Generic,
                                 RouterArch::PathSensitive,
                                 RouterArch::Roco};
constexpr RoutingKind kRoutings[] = {RoutingKind::XY, RoutingKind::XYYX,
                                     RoutingKind::Adaptive};

inline void
hr()
{
    std::puts("------------------------------------------------------"
              "------------------");
}

/**
 * A spec over the full architecture x routing comparison grid — the
 * axes every figure bench sweeps. The base carries the paper's
 * warm-up/measurement window (paperConfig, NOC_BENCH_* overridable).
 */
inline exp::SweepSpec
makeGridSpec(const char *name)
{
    exp::SweepSpec spec = makeSpec(name);
    spec.archs = {std::begin(kArchs), std::end(kArchs)};
    spec.routings = {std::begin(kRoutings), std::end(kRoutings)};
    return spec;
}

/**
 * The figures' shared table layout: one section per swept routing,
 * each with a column-header line naming the three architectures, a
 * rule, and one data line per row. @p printRow(routingIdx, rowIdx)
 * prints a full line (label, per-arch cells, newline); @p labelWidth /
 * @p rowLabel format the header's row-label column and @p headerTail
 * is appended after the arch columns (e.g. a units note).
 */
template <typename Row>
inline void
perRoutingTables(const exp::SweepSpec &spec, int labelWidth,
                 const char *rowLabel, const char *headerTail,
                 std::size_t rows, Row printRow)
{
    for (std::size_t ro = 0; ro < spec.routings.size(); ++ro) {
        std::printf("\n-- %s routing --\n", toString(spec.routings[ro]));
        std::printf("%-*s %10s %12s %10s%s\n", labelWidth, rowLabel,
                    "Generic", "PathSens", "RoCo", headerTail);
        hr();
        for (std::size_t r = 0; r < rows; ++r)
            printRow(ro, r);
    }
}

} // namespace noc::bench

#endif // ROCOSIM_BENCH_BENCH_UTIL_H_
