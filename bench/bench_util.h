/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * The paper's protocol (20,000 warm-up + 1,000,000 measured packets)
 * is scaled down so the whole suite runs in minutes on a laptop; the
 * comparisons are stable at this scale. Override with:
 *   NOC_BENCH_WARMUP=<packets>  NOC_BENCH_PACKETS=<packets>
 */
#ifndef ROCOSIM_BENCH_BENCH_UTIL_H_
#define ROCOSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.h"

namespace noc::bench {

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/** The evaluation configuration of Section 5.4, scaled. */
inline SimConfig
paperConfig(RouterArch arch, RoutingKind routing, TrafficKind traffic,
            double rate)
{
    SimConfig cfg;
    cfg.arch = arch;
    cfg.routing = routing;
    cfg.traffic = traffic;
    cfg.injectionRate = rate;
    cfg.warmupPackets = envOr("NOC_BENCH_WARMUP", 800);
    cfg.measurePackets = envOr("NOC_BENCH_PACKETS", 6000);
    cfg.maxCycles = 150000;
    return cfg;
}

inline SimResult
run(RouterArch arch, RoutingKind routing, TrafficKind traffic,
    double rate, const std::vector<FaultSpec> &faults = {})
{
    Simulator sim(paperConfig(arch, routing, traffic, rate), faults);
    return sim.run();
}

constexpr RouterArch kArchs[] = {RouterArch::Generic,
                                 RouterArch::PathSensitive,
                                 RouterArch::Roco};
constexpr RoutingKind kRoutings[] = {RoutingKind::XY, RoutingKind::XYYX,
                                     RoutingKind::Adaptive};

inline void
hr()
{
    std::puts("------------------------------------------------------"
              "------------------");
}

} // namespace noc::bench

#endif // ROCOSIM_BENCH_BENCH_UTIL_H_
