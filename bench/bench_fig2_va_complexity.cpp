/**
 * @file
 * Figure 2: virtual-channel allocator complexity comparison — the
 * generic 5-port router needs 5v arbiters of width 5v:1 at stage 2,
 * the RoCo router only 4v arbiters of width 2v:1.
 */
#include <cstdio>

#include "metrics/arbiter_complexity.h"

int
main()
{
    using namespace noc;
    const int v = 3;
    std::puts("Figure 2: VA arbiter inventory (R => P form, v = 3)");
    std::printf("%-16s %18s %18s %12s\n", "router", "stage-1 arbiters",
                "stage-2 arbiters", "crosspoints");
    for (RouterArch a : {RouterArch::Generic, RouterArch::PathSensitive,
                         RouterArch::Roco}) {
        VaComplexity c = vaComplexity(a, v);
        char s1[24], s2[24];
        std::snprintf(s1, sizeof s1, "%d x %d:1", c.stage1.count,
                      c.stage1.width);
        std::snprintf(s2, sizeof s2, "%d x %d:1", c.stage2.count,
                      c.stage2.width);
        std::printf("%-16s %18s %18s %12d\n", toString(a), s1, s2,
                    c.crosspoints());
    }
    std::puts("\nPaper: RoCo uses FEWER (4v vs 5v) and SMALLER (2v:1 vs"
              " 5v:1) arbiters.");
    return 0;
}
