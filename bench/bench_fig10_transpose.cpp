/** @file Figure 10: latency under transpose traffic. */
#include "bench_latency_sweep.h"

int
main()
{
    return noc::bench::latencySweep(noc::TrafficKind::Transpose,
                                    "Figure 10", "fig10_transpose");
}
