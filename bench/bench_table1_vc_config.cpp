/**
 * @file
 * Table 1: VC buffer configuration of the RoCo router for the three
 * routing algorithms.
 */
#include <cstdio>

#include "router/roco/vc_config.h"

int
main()
{
    using namespace noc;
    std::puts("Table 1: VC Buffer Configuration for the Three Routing "
              "Algorithms");
    std::printf("%-9s | %-18s | %-18s | %-18s | %-18s\n", "", "Row P1",
                "Row P2", "Col P1", "Col P2");
    for (RoutingKind k :
         {RoutingKind::Adaptive, RoutingKind::XYYX, RoutingKind::XY}) {
        RocoVcConfig c = RocoVcConfig::forRouting(k);
        std::printf("%-9s |", toString(k));
        for (int m = 0; m < 2; ++m) {
            for (int p = 0; p < kPortsPerModule; ++p) {
                char cell[32];
                std::snprintf(cell, sizeof cell, " %s %s %s",
                              toString(c.at(static_cast<Module>(m), p, 0)),
                              toString(c.at(static_cast<Module>(m), p, 1)),
                              toString(c.at(static_cast<Module>(m), p, 2)));
                std::printf(" %-18s|", cell);
            }
        }
        std::puts("");
    }
    std::puts("\nPaper: Adaptive {dx,tyx,Injxy|dx,dx,tyx|dy,txy,Injyx|"
              "dy,txy,txy}");
    std::puts("       XY-YX    {dx,tyx,Injxy|dx,dx,tyx|dy,txy,Injyx|"
              "dy,dy,txy}");
    std::puts("       XY       {dx,dx,Injxy|dx,dx,Injxy|dy,txy,Injyx|"
              "dy,dy,txy}");
    return 0;
}
